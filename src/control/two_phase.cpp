#include "control/two_phase.hpp"

#include "common/check.hpp"
#include "common/log.hpp"

namespace switchboard::control {

const char* to_string(TwoPhaseState state) {
  switch (state) {
    case TwoPhaseState::kIdle: return "idle";
    case TwoPhaseState::kPrepared: return "prepared";
    case TwoPhaseState::kCommitted: return "committed";
    case TwoPhaseState::kAborted: return "aborted";
  }
  return "unknown";
}

bool TwoPhaseTracker::legal(TwoPhaseState from, TwoPhaseState to) {
  // Rows: from; columns: to, in enum order {Idle, Prepared, Committed,
  // Aborted}.  Self-loops on Prepared (one reservation per stage of the
  // route) and on the terminal states (idempotent re-commit/re-abort when
  // a chain repeats a VNF) are legal; nothing re-enters Idle.
  static constexpr bool kLegal[4][4] = {
      /* Idle      -> */ {false, true, false, true},
      /* Prepared  -> */ {false, true, true, true},
      /* Committed -> */ {false, false, true, false},
      /* Aborted   -> */ {false, false, false, true},
  };
  return kLegal[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
}

TwoPhaseState TwoPhaseTracker::state(ChainId chain, RouteId route) const {
  const auto it = states_.find(Key{chain.value(), route.value()});
  return it == states_.end() ? TwoPhaseState::kIdle : it->second;
}

void TwoPhaseTracker::transition(ChainId chain, RouteId route,
                                 TwoPhaseState to) {
  const TwoPhaseState from = state(chain, route);
  SWB_CHECK(legal(from, to))
      << "illegal 2PC transition " << to_string(from) << " -> "
      << to_string(to) << " for chain " << chain << " route " << route;
  states_[Key{chain.value(), route.value()}] = to;
}

bool TwoPhaseTracker::try_transition(ChainId chain, RouteId route,
                                     TwoPhaseState to) {
  const TwoPhaseState from = state(chain, route);
  if (!legal(from, to)) {
    ++rejected_;
    SB_LOG(kDebug) << "2pc: rejected re-delivered transition "
                   << to_string(from) << " -> " << to_string(to)
                   << " for chain " << chain << " route " << route;
    return false;
  }
  states_[Key{chain.value(), route.value()}] = to;
  return true;
}

std::size_t TwoPhaseTracker::count(TwoPhaseState state) const {
  std::size_t total = 0;
  for (const auto& [key, s] : states_) total += s == state ? 1 : 0;
  return total;
}

void TwoPhaseTracker::check_invariants() const {
  std::size_t partitioned = 0;
  for (const auto& [key, s] : states_) {
    SWB_CHECK(s != TwoPhaseState::kIdle)
        << "idle pair stored for chain " << key.first << " route "
        << key.second;
    SWB_CHECK(s == TwoPhaseState::kPrepared ||
              s == TwoPhaseState::kCommitted || s == TwoPhaseState::kAborted);
    ++partitioned;
  }
  SWB_CHECK_EQ(partitioned, count(TwoPhaseState::kPrepared) +
                                count(TwoPhaseState::kCommitted) +
                                count(TwoPhaseState::kAborted));
}

}  // namespace switchboard::control
