#include "control/vnf_controller.hpp"

#include <cassert>

namespace switchboard::control {
namespace {

std::pair<std::uint32_t, std::uint32_t> key(ChainId chain, RouteId route) {
  return {chain.value(), route.value()};
}

}  // namespace

VnfController::VnfController(ControlContext& context, VnfId vnf)
    : context_{context},
      vnf_{vnf},
      committed_load_(context.model.sites().size(), 0.0),
      pending_load_(context.model.sites().size(), 0.0) {}

bool VnfController::prepare(ChainId chain, RouteId route, SiteId site,
                            double load) {
  assert(load >= 0);
  assert(site.value() < committed_load_.size());
  const double capacity = context_.model.vnf(vnf_).capacity_at(site);
  const double in_use =
      committed_load_[site.value()] + pending_load_[site.value()];
  if (in_use + load > capacity + 1e-9) {
    return false;   // vote abort: resource shortage at this site
  }
  pending_load_[site.value()] += load;
  pending_[key(chain, route)].push_back(Reservation{site, load});
  return true;
}

void VnfController::commit(ChainId chain, RouteId route,
                           std::uint32_t egress_label) {
  const auto it = pending_.find(key(chain, route));
  if (it == pending_.end()) return;
  for (const Reservation& r : it->second) {
    pending_load_[r.site.value()] -= r.load;
    committed_load_[r.site.value()] += r.load;
    ensure_instance(r.site);

    // Publish the allocation (Fig. 4 step 4).
    InstanceAnnouncement announcement;
    announcement.instance = ensure_instance(r.site);
    announcement.forwarder =
        context_.elements.info(announcement.instance).attached_forwarder;
    announcement.weight =
        context_.elements.info(announcement.instance).weight;
    const bus::Topic topic =
        bus::instances_topic(chain, egress_label, vnf_, r.site);
    announced_.insert({chain.value(), egress_label, r.site.value()});
    context_.sim.schedule(
        context_.timings.controller_processing,
        [this, topic, announcement] {
          context_.bus.publish(topic, serialize(announcement));
        });
  }
  pending_.erase(it);
}

void VnfController::abort(ChainId chain, RouteId route) {
  const auto it = pending_.find(key(chain, route));
  if (it == pending_.end()) return;
  for (const Reservation& r : it->second) {
    pending_load_[r.site.value()] -= r.load;
  }
  pending_.erase(it);
}

double VnfController::allocated(SiteId site) const {
  assert(site.value() < committed_load_.size());
  return committed_load_[site.value()] + pending_load_[site.value()];
}

double VnfController::headroom(SiteId site) const {
  return context_.model.vnf(vnf_).capacity_at(site) - allocated(site);
}

std::vector<dataplane::ElementId> VnfController::scale_instances(
    SiteId site, std::size_t count) {
  std::vector<dataplane::ElementId> created;
  const auto existing = context_.elements.vnf_instances_at(site, vnf_);
  if (existing.size() >= count) return created;

  // All instances of a VNF at a site share the VNF's forwarder (Fig. 5);
  // bootstrap via ensure_instance if none exists yet.
  const dataplane::ElementId first = ensure_instance(site);
  const dataplane::ElementId forwarder =
      context_.elements.info(first).attached_forwarder;
  while (context_.elements.vnf_instances_at(site, vnf_).size() < count) {
    created.push_back(context_.elements.create_vnf_instance(
        site, vnf_, forwarder, /*weight=*/1.0,
        context_.model.vnf(vnf_).capacity_at(site)));
  }

  // Re-announce the whole pool on every committed chain topic at the site
  // so Local Switchboards rebuild their weighted rules.
  for (const auto& [chain_raw, egress_label, site_raw] : announced_) {
    if (site_raw != site.value()) continue;
    const ChainId chain{chain_raw};
    for (const dataplane::ElementId instance :
         context_.elements.vnf_instances_at(site, vnf_)) {
      InstanceAnnouncement announcement;
      announcement.instance = instance;
      announcement.forwarder =
          context_.elements.info(instance).attached_forwarder;
      announcement.weight = context_.elements.info(instance).weight;
      const bus::Topic topic =
          bus::instances_topic(chain, egress_label, vnf_, site);
      context_.sim.schedule(
          context_.timings.controller_processing,
          [this, topic, announcement] {
            context_.bus.publish(topic, serialize(announcement));
          });
    }
  }
  return created;
}

dataplane::ElementId VnfController::ensure_instance(SiteId site) {
  const auto existing = context_.elements.vnf_instances_at(site, vnf_);
  if (!existing.empty()) return existing.front();
  // Each service gets its own forwarder at a site: a forwarder fronting
  // two different services of the same chain could not disambiguate which
  // next hop a returning packet needs (rules are keyed by labels only).
  const dataplane::ElementId forwarder =
      context_.elements.create_forwarder(site);
  return context_.elements.create_vnf_instance(
      site, vnf_, forwarder, /*weight=*/1.0,
      /*capacity=*/context_.model.vnf(vnf_).capacity_at(site));
}

}  // namespace switchboard::control
