#include "control/vnf_controller.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace switchboard::control {
namespace {

std::pair<std::uint32_t, std::uint32_t> key(ChainId chain, RouteId route) {
  return {chain.value(), route.value()};
}

}  // namespace

VnfController::VnfController(ControlContext& context, VnfId vnf)
    : context_{context},
      vnf_{vnf},
      committed_load_(context.model.sites().size(), 0.0),
      pending_load_(context.model.sites().size(), 0.0) {}

bool VnfController::prepare(ChainId chain, RouteId route, SiteId site,
                            double load) {
  SWB_CHECK(load >= 0);
  SWB_CHECK(site.value() < committed_load_.size());
  const double capacity = context_.model.vnf(vnf_).capacity_at(site);
  const double in_use =
      committed_load_[site.value()] + pending_load_[site.value()];
  if (in_use + load > capacity + 1e-9) {
    // Vote abort: resource shortage at this site.  Recording kAborted makes
    // a later commit of this route at this participant an illegal
    // transition — the coordinator must never commit past a no vote.
    two_phase_.transition(chain, route, TwoPhaseState::kAborted);
    return false;
  }
  two_phase_.transition(chain, route, TwoPhaseState::kPrepared);
  pending_load_[site.value()] += load;
  pending_[key(chain, route)].push_back(Reservation{site, load});
  return true;
}

void VnfController::commit(ChainId chain, RouteId route,
                           std::uint32_t egress_label) {
  // Legal only after a yes vote (kPrepared) or as an idempotent re-commit
  // (a chain using this VNF at two stages commits once per stage); a
  // commit while kIdle or after a no vote aborts here.
  two_phase_.transition(chain, route, TwoPhaseState::kCommitted);
  const auto it = pending_.find(key(chain, route));
  if (it == pending_.end()) return;
  for (const Reservation& r : it->second) {
    pending_load_[r.site.value()] -= r.load;
    committed_load_[r.site.value()] += r.load;
    ensure_instance(r.site);

    // Publish the allocation (Fig. 4 step 4).
    InstanceAnnouncement announcement;
    announcement.instance = ensure_instance(r.site);
    announcement.forwarder =
        context_.elements.info(announcement.instance).attached_forwarder;
    announcement.weight =
        context_.elements.info(announcement.instance).weight;
    const bus::Topic topic =
        bus::instances_topic(chain, egress_label, vnf_, r.site);
    announced_.insert({chain.value(), egress_label, r.site.value()});
    context_.sim.schedule(
        context_.timings.controller_processing,
        [this, topic, announcement] {
          context_.bus.publish(topic, serialize(announcement));
        });
  }
  pending_.erase(it);
}

void VnfController::abort(ChainId chain, RouteId route) {
  // Legal from kIdle (abort of a route never seen here), kPrepared, or
  // kAborted (repeat); aborting a committed route would un-account
  // committed capacity and is rejected by the matrix.
  two_phase_.transition(chain, route, TwoPhaseState::kAborted);
  const auto it = pending_.find(key(chain, route));
  if (it == pending_.end()) return;
  for (const Reservation& r : it->second) {
    pending_load_[r.site.value()] -= r.load;
  }
  pending_.erase(it);
}

double VnfController::allocated(SiteId site) const {
  SWB_CHECK(site.value() < committed_load_.size());
  return committed_load_[site.value()] + pending_load_[site.value()];
}

double VnfController::headroom(SiteId site) const {
  return context_.model.vnf(vnf_).capacity_at(site) - allocated(site);
}

std::vector<dataplane::ElementId> VnfController::scale_instances(
    SiteId site, std::size_t count) {
  std::vector<dataplane::ElementId> created;
  const auto existing = context_.elements.vnf_instances_at(site, vnf_);
  if (existing.size() >= count) return created;

  // All instances of a VNF at a site share the VNF's forwarder (Fig. 5);
  // bootstrap via ensure_instance if none exists yet.
  const dataplane::ElementId first = ensure_instance(site);
  const dataplane::ElementId forwarder =
      context_.elements.info(first).attached_forwarder;
  while (context_.elements.vnf_instances_at(site, vnf_).size() < count) {
    created.push_back(context_.elements.create_vnf_instance(
        site, vnf_, forwarder, /*weight=*/1.0,
        context_.model.vnf(vnf_).capacity_at(site)));
  }

  // Re-announce the whole pool on every committed chain topic at the site
  // so Local Switchboards rebuild their weighted rules.
  for (const auto& [chain_raw, egress_label, site_raw] : announced_) {
    if (site_raw != site.value()) continue;
    const ChainId chain{chain_raw};
    for (const dataplane::ElementId instance :
         context_.elements.vnf_instances_at(site, vnf_)) {
      InstanceAnnouncement announcement;
      announcement.instance = instance;
      announcement.forwarder =
          context_.elements.info(instance).attached_forwarder;
      announcement.weight = context_.elements.info(instance).weight;
      const bus::Topic topic =
          bus::instances_topic(chain, egress_label, vnf_, site);
      context_.sim.schedule(
          context_.timings.controller_processing,
          [this, topic, announcement] {
            context_.bus.publish(topic, serialize(announcement));
          });
    }
  }
  return created;
}

void VnfController::check_invariants() const {
  SWB_CHECK_EQ(committed_load_.size(), pending_load_.size());
  for (std::size_t s = 0; s < committed_load_.size(); ++s) {
    SWB_CHECK(std::isfinite(committed_load_[s])) << "site " << s;
    SWB_CHECK(std::isfinite(pending_load_[s])) << "site " << s;
    SWB_CHECK_GE(committed_load_[s], -1e-9) << "site " << s;
    SWB_CHECK_GE(pending_load_[s], -1e-9) << "site " << s;
  }
  // Each site's pending load is exactly the sum of outstanding
  // reservations there — a mismatch means a reservation was dropped or
  // double-released on some commit/abort path.
  std::vector<double> expected(pending_load_.size(), 0.0);
  for (const auto& [chain_route, reservations] : pending_) {
    SWB_CHECK(!reservations.empty())
        << "empty reservation list for chain " << chain_route.first
        << " route " << chain_route.second;
    // kAborted is transiently legal here: a no vote at a later stage of an
    // already-prepared route leaves the earlier reservation parked until
    // the coordinator's abort() releases it.  kIdle or kCommitted with
    // live reservations means a bookkeeping path leaked.
    const TwoPhaseState state = two_phase_.state(ChainId{chain_route.first},
                                                 RouteId{chain_route.second});
    SWB_CHECK(state == TwoPhaseState::kPrepared ||
              state == TwoPhaseState::kAborted)
        << "reservations for chain " << chain_route.first << " route "
        << chain_route.second << " held in state " << to_string(state);
    for (const Reservation& r : reservations) {
      SWB_CHECK_LT(r.site.value(), expected.size());
      SWB_CHECK(std::isfinite(r.load) && r.load >= 0.0);
      expected[r.site.value()] += r.load;
    }
  }
  for (std::size_t s = 0; s < pending_load_.size(); ++s) {
    SWB_CHECK_LE(std::abs(pending_load_[s] - expected[s]),
                 1e-6 * std::max(1.0, expected[s]))
        << "site " << s << " pending load drifted from its reservations";
  }
  // Every kPrepared pair holds reservations (prepare() records both
  // atomically), so the prepared population cannot exceed the pending map.
  SWB_CHECK_LE(two_phase_.count(TwoPhaseState::kPrepared), pending_.size());
  two_phase_.check_invariants();
}

dataplane::ElementId VnfController::ensure_instance(SiteId site) {
  const auto existing = context_.elements.vnf_instances_at(site, vnf_);
  if (!existing.empty()) return existing.front();
  // Each service gets its own forwarder at a site: a forwarder fronting
  // two different services of the same chain could not disambiguate which
  // next hop a returning packet needs (rules are keyed by labels only).
  const dataplane::ElementId forwarder =
      context_.elements.create_forwarder(site);
  return context_.elements.create_vnf_instance(
      site, vnf_, forwarder, /*weight=*/1.0,
      /*capacity=*/context_.model.vnf(vnf_).capacity_at(site));
}

}  // namespace switchboard::control
