#include "control/vnf_controller.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/log.hpp"

namespace switchboard::control {
namespace {

std::pair<std::uint32_t, std::uint32_t> key(ChainId chain, RouteId route) {
  return {chain.value(), route.value()};
}

}  // namespace

VnfController::VnfController(ControlContext& context, VnfId vnf)
    : context_{context},
      vnf_{vnf},
      committed_load_(context.model.sites().size(), 0.0),
      pending_load_(context.model.sites().size(), 0.0) {}

bool VnfController::fenced(std::uint64_t epoch, const char* verb) {
  if (epoch == kUnfencedEpoch) return false;
  if (epoch < highest_epoch_) {
    ++stale_commands_rejected_;
    SB_LOG(kDebug) << "vnf " << vnf_ << ": fenced stale " << verb
                   << " from epoch " << epoch << " (highest "
                   << highest_epoch_ << ")";
    return true;
  }
  highest_epoch_ = epoch;
  return false;
}

bool VnfController::prepare(ChainId chain, RouteId route, SiteId site,
                            double load, std::size_t stage,
                            std::uint64_t epoch) {
  SWB_CHECK(load >= 0);
  SWB_CHECK(site.value() < committed_load_.size());
  // A fenced prepare is a no vote: the stale coordinator's round must die.
  if (fenced(epoch, "prepare")) return false;

  // Idempotent re-delivery: a (chain, route, stage) already reserved here
  // is a repeat of a prepare whose answer the coordinator missed — say
  // yes again without reserving twice.
  if (const auto it = pending_.find(key(chain, route)); it != pending_.end()) {
    for (const Reservation& r : it->second) {
      if (r.stage == stage) {
        ++duplicate_prepares_;
        SB_LOG(kDebug) << "vnf " << vnf_ << ": duplicate prepare for chain "
                       << chain << " route " << route << " stage " << stage;
        return true;
      }
    }
  }

  const double capacity = context_.model.vnf(vnf_).capacity_at(site);
  const double in_use =
      committed_load_[site.value()] + pending_load_[site.value()];
  if (in_use + load > capacity + 1e-9) {
    // Vote abort: resource shortage at this site.  Recording kAborted makes
    // a later commit of this route at this participant an illegal
    // transition — the coordinator must never commit past a no vote.
    two_phase_.transition(chain, route, TwoPhaseState::kAborted);
    return false;
  }
  two_phase_.transition(chain, route, TwoPhaseState::kPrepared);
  pending_load_[site.value()] += load;
  pending_[key(chain, route)].push_back(Reservation{site, load, stage});
  prepared_at_[key(chain, route)] = context_.sim.now();

  // Reservation GC: if the coordinator dies between prepare and commit,
  // the reservation would pin capacity forever.  With a TTL configured,
  // re-check when it elapses and abort if still prepared and unrefreshed.
  const sim::Duration ttl = context_.timings.reservation_ttl;
  if (ttl > 0) {
    context_.sim.schedule(ttl, [this, chain, route, ttl] {
      const auto at = prepared_at_.find(key(chain, route));
      if (at == prepared_at_.end()) return;   // committed or aborted already
      if (context_.sim.now() - at->second < ttl) return;   // refreshed
      if (two_phase_.state(chain, route) != TwoPhaseState::kPrepared) return;
      ++gc_aborts_;
      SB_LOG(kDebug) << "vnf " << vnf_ << ": GC-aborting stale reservation "
                     << "for chain " << chain << " route " << route;
      abort(chain, route);
    });
  }
  return true;
}

void VnfController::commit(ChainId chain, RouteId route,
                           std::uint32_t egress_label, std::uint64_t epoch) {
  if (fenced(epoch, "commit")) return;
  // A commit racing the reservation GC (or a duplicated commit after an
  // abort) finds kAborted: the reservation is gone, so there is nothing
  // to allocate — reject-and-count, don't crash.  kIdle still dies below:
  // a commit for a route never prepared here is a coordinator bug, and
  // the matrix check is the loud failure we want.
  if (two_phase_.state(chain, route) == TwoPhaseState::kAborted) {
    const bool applied =
        two_phase_.try_transition(chain, route, TwoPhaseState::kCommitted);
    SWB_CHECK(!applied);
    SB_LOG(kDebug) << "vnf " << vnf_ << ": late commit for aborted chain "
                   << chain << " route " << route << " rejected";
    return;
  }
  // Legal only after a yes vote (kPrepared) or as an idempotent re-commit
  // (a chain using this VNF at two stages commits once per stage); a
  // commit while kIdle aborts here.
  two_phase_.transition(chain, route, TwoPhaseState::kCommitted);
  prepared_at_.erase(key(chain, route));
  const auto it = pending_.find(key(chain, route));
  if (it == pending_.end()) return;
  for (const Reservation& r : it->second) {
    pending_load_[r.site.value()] -= r.load;
    committed_load_[r.site.value()] += r.load;

    // Publish the allocation (Fig. 4 step 4).
    const dataplane::ElementId instance = ensure_instance(r.site);
    announced_.insert({chain.value(), egress_label, r.site.value()});
    publish_instance(chain, egress_label, r.site, instance);
  }
  // Keep the reservations: release() needs them to return capacity when
  // the recovery path retires the route.
  auto& committed = committed_[key(chain, route)];
  committed.insert(committed.end(), it->second.begin(), it->second.end());
  pending_.erase(it);
}

void VnfController::abort(ChainId chain, RouteId route, std::uint64_t epoch) {
  if (fenced(epoch, "abort")) return;
  // Message duplication / coordinator retries make a late abort of an
  // already-committed route reachable: rejecting it (counted by the
  // tracker) protects the committed capacity accounting.  All other
  // illegal aborts still crash via the matrix below.
  if (two_phase_.state(chain, route) == TwoPhaseState::kCommitted) {
    const bool applied =
        two_phase_.try_transition(chain, route, TwoPhaseState::kAborted);
    SWB_CHECK(!applied);
    SB_LOG(kDebug) << "vnf " << vnf_ << ": late abort for committed chain "
                   << chain << " route " << route << " rejected";
    return;
  }
  // Legal from kIdle (abort of a route never seen here), kPrepared, or
  // kAborted (repeat).
  two_phase_.transition(chain, route, TwoPhaseState::kAborted);
  prepared_at_.erase(key(chain, route));
  const auto it = pending_.find(key(chain, route));
  if (it == pending_.end()) return;
  for (const Reservation& r : it->second) {
    pending_load_[r.site.value()] -= r.load;
  }
  pending_.erase(it);
}

void VnfController::release(ChainId chain, RouteId route,
                            std::uint64_t epoch) {
  if (fenced(epoch, "release")) return;
  const auto it = committed_.find(key(chain, route));
  if (it == committed_.end()) return;
  for (const Reservation& r : it->second) {
    committed_load_[r.site.value()] -= r.load;
  }
  committed_.erase(it);
}

std::vector<std::pair<ChainId, RouteId>> VnfController::committed_routes()
    const {
  std::vector<std::pair<ChainId, RouteId>> routes;
  routes.reserve(committed_.size());
  for (const auto& [chain_route, reservations] : committed_) {
    routes.emplace_back(ChainId{chain_route.first},
                        RouteId{chain_route.second});
  }
  return routes;
}

double VnfController::allocated(SiteId site) const {
  SWB_CHECK(site.value() < committed_load_.size());
  return committed_load_[site.value()] + pending_load_[site.value()];
}

double VnfController::headroom(SiteId site) const {
  return context_.model.vnf(vnf_).capacity_at(site) - allocated(site);
}

void VnfController::publish_instance(ChainId chain,
                                     std::uint32_t egress_label, SiteId site,
                                     dataplane::ElementId instance) {
  InstanceAnnouncement announcement;
  announcement.instance = instance;
  const ElementInfo& info = context_.elements.info(instance);
  announcement.forwarder = info.attached_forwarder;
  announcement.weight = info.up ? info.weight : 0.0;
  const bus::Topic topic = bus::instances_topic(chain, egress_label, vnf_,
                                                site);
  context_.sim.schedule(context_.timings.controller_processing,
                        [this, topic, announcement] {
                          context_.bus.publish(topic,
                                               serialize(announcement));
                        });
}

std::vector<dataplane::ElementId> VnfController::scale_instances(
    SiteId site, std::size_t count) {
  std::vector<dataplane::ElementId> created;
  const auto existing = context_.elements.vnf_instances_at(site, vnf_);
  if (existing.size() >= count) return created;

  // All instances of a VNF at a site share the VNF's forwarder (Fig. 5);
  // bootstrap via ensure_instance if none exists yet.
  const dataplane::ElementId first = ensure_instance(site);
  const dataplane::ElementId forwarder =
      context_.elements.info(first).attached_forwarder;
  while (context_.elements.vnf_instances_at(site, vnf_).size() < count) {
    created.push_back(context_.elements.create_vnf_instance(
        site, vnf_, forwarder, /*weight=*/1.0,
        context_.model.vnf(vnf_).capacity_at(site)));
  }
  reannounce_instances(site);
  return created;
}

void VnfController::reannounce_instances(SiteId site) {
  // Announce the whole pool, current weights (0 when down), on every
  // committed chain topic at the site so Local Switchboards rebuild their
  // weighted rules.
  for (const auto& [chain_raw, egress_label, site_raw] : announced_) {
    if (site_raw != site.value()) continue;
    const ChainId chain{chain_raw};
    for (const dataplane::ElementId instance :
         context_.elements.vnf_instances_at(site, vnf_)) {
      publish_instance(chain, egress_label, site, instance);
    }
  }
}

void VnfController::check_invariants() const {
  SWB_CHECK_EQ(committed_load_.size(), pending_load_.size());
  for (std::size_t s = 0; s < committed_load_.size(); ++s) {
    SWB_CHECK(std::isfinite(committed_load_[s])) << "site " << s;
    SWB_CHECK(std::isfinite(pending_load_[s])) << "site " << s;
    SWB_CHECK_GE(committed_load_[s], -1e-9) << "site " << s;
    SWB_CHECK_GE(pending_load_[s], -1e-9) << "site " << s;
  }
  // Each site's pending load is exactly the sum of outstanding
  // reservations there — a mismatch means a reservation was dropped or
  // double-released on some commit/abort path.
  std::vector<double> expected(pending_load_.size(), 0.0);
  for (const auto& [chain_route, reservations] : pending_) {
    SWB_CHECK(!reservations.empty())
        << "empty reservation list for chain " << chain_route.first
        << " route " << chain_route.second;
    // kAborted is transiently legal here: a no vote at a later stage of an
    // already-prepared route leaves the earlier reservation parked until
    // the coordinator's abort() releases it.  kIdle or kCommitted with
    // live reservations means a bookkeeping path leaked.
    const TwoPhaseState state = two_phase_.state(ChainId{chain_route.first},
                                                 RouteId{chain_route.second});
    SWB_CHECK(state == TwoPhaseState::kPrepared ||
              state == TwoPhaseState::kAborted)
        << "reservations for chain " << chain_route.first << " route "
        << chain_route.second << " held in state " << to_string(state);
    for (const Reservation& r : reservations) {
      SWB_CHECK_LT(r.site.value(), expected.size());
      SWB_CHECK(std::isfinite(r.load) && r.load >= 0.0);
      expected[r.site.value()] += r.load;
    }
  }
  for (std::size_t s = 0; s < pending_load_.size(); ++s) {
    SWB_CHECK_LE(std::abs(pending_load_[s] - expected[s]),
                 1e-6 * std::max(1.0, expected[s]))
        << "site " << s << " pending load drifted from its reservations";
  }
  // Mirror audit for the committed side: committed load per site equals
  // the sum of committed reservations (release() and commit() are the
  // only writers).
  std::vector<double> committed_expected(committed_load_.size(), 0.0);
  for (const auto& [chain_route, reservations] : committed_) {
    SWB_CHECK_EQ(
        static_cast<int>(two_phase_.state(ChainId{chain_route.first},
                                          RouteId{chain_route.second})),
        static_cast<int>(TwoPhaseState::kCommitted))
        << "committed reservations for chain " << chain_route.first
        << " route " << chain_route.second << " not in kCommitted";
    for (const Reservation& r : reservations) {
      SWB_CHECK_LT(r.site.value(), committed_expected.size());
      committed_expected[r.site.value()] += r.load;
    }
  }
  for (std::size_t s = 0; s < committed_load_.size(); ++s) {
    SWB_CHECK_LE(std::abs(committed_load_[s] - committed_expected[s]),
                 1e-6 * std::max(1.0, committed_expected[s]))
        << "site " << s << " committed load drifted from its reservations";
  }
  // Every kPrepared pair holds reservations (prepare() records both
  // atomically), so the prepared population cannot exceed the pending map.
  SWB_CHECK_LE(two_phase_.count(TwoPhaseState::kPrepared), pending_.size());
  two_phase_.check_invariants();
}

dataplane::ElementId VnfController::ensure_instance(SiteId site) {
  const auto existing = context_.elements.vnf_instances_at(site, vnf_);
  if (!existing.empty()) return existing.front();
  // Each service gets its own forwarder at a site: a forwarder fronting
  // two different services of the same chain could not disambiguate which
  // next hop a returning packet needs (rules are keyed by labels only).
  const dataplane::ElementId forwarder =
      context_.elements.create_forwarder(site);
  return context_.elements.create_vnf_instance(
      site, vnf_, forwarder, /*weight=*/1.0,
      /*capacity=*/context_.model.vnf(vnf_).capacity_at(site));
}

}  // namespace switchboard::control
