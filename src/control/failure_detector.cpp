#include "control/failure_detector.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace switchboard::control {

FailureDetector::FailureDetector(ControlContext& context, SiteId home_site,
                                 FailureDetectorConfig config)
    : context_{context}, home_site_{home_site}, config_{config} {
  SWB_CHECK(config_.period > 0) << "detector period must be positive";
  SWB_CHECK(config_.suspicion_threshold > 0);
  SWB_CHECK(config_.element_debounce_beats > 0);
}

void FailureDetector::set_site_down_callback(SiteCallback callback) {
  site_down_ = std::move(callback);
}

void FailureDetector::set_site_up_callback(SiteCallback callback) {
  site_up_ = std::move(callback);
}

void FailureDetector::set_element_down_callback(ElementCallback callback) {
  element_down_ = std::move(callback);
}

void FailureDetector::watch_site(SiteId site) {
  if (sites_.count(site.value()) != 0) return;
  SiteState state;
  state.last_beat = context_.sim.now();
  sites_[site.value()] = state;
  context_.bus.subscribe(
      home_site_, bus::health_topic(site), [this](const bus::Message& message) {
        if (const auto beat = parse_heartbeat(message.payload)) {
          on_heartbeat(*beat);
        }
      });
}

void FailureDetector::start() {
  if (running_) return;
  running_ = true;
  sweep_event_ = context_.sim.schedule(config_.period, [this] { sweep(); });
}

void FailureDetector::stop() {
  running_ = false;
  if (sweep_event_.valid()) {
    context_.sim.cancel(sweep_event_);
    sweep_event_ = sim::EventHandle{};
  }
}

void FailureDetector::resync() {
  for (auto& [site_raw, state] : sites_) {
    state.down_reported.clear();
    state.down_streak.clear();
  }
}

bool FailureDetector::suspects(SiteId site) const {
  const auto it = sites_.find(site.value());
  return it != sites_.end() && it->second.suspected;
}

void FailureDetector::on_heartbeat(const Heartbeat& beat) {
  const auto it = sites_.find(beat.site.value());
  if (it == sites_.end()) return;   // never watched; ignore
  SiteState& state = it->second;
  // Health topics are transient (no retention, no retransmit), so an
  // out-of-order beat can only come from injected duplication/delay —
  // a stale sequence number must not refresh the liveness clock.
  if (beat.seq <= state.last_seq) return;
  state.last_seq = beat.seq;
  state.last_beat = context_.sim.now();
  if (state.suspected) {
    state.suspected = false;
    ++recoveries_observed_;
    SB_LOG(kInfo) << "detector: site " << beat.site << " is back (seq "
                  << beat.seq << ")";
    if (site_up_) site_up_(beat.site);
  }

  // Element liveness rides in the beat: relay an element only after it has
  // been down `element_debounce_beats` beats in a row (a flap that heals
  // within the debounce window triggers nothing), relay once, and forget
  // recovered ones so a re-failure is debounced and reported again.
  std::set<dataplane::ElementId> down_now{beat.down_elements.begin(),
                                          beat.down_elements.end()};
  for (const dataplane::ElementId element : down_now) {
    const std::uint32_t streak = ++state.down_streak[element];
    if (streak < config_.element_debounce_beats) continue;
    if (state.down_reported.insert(element).second) {
      ++element_failures_reported_;
      SB_LOG(kInfo) << "detector: element " << element << " down at site "
                    << beat.site << " (" << streak << " beats)";
      if (element_down_) element_down_(element, beat.site);
    }
  }
  std::erase_if(state.down_reported, [&](dataplane::ElementId element) {
    return down_now.count(element) == 0;
  });
  std::erase_if(state.down_streak, [&](const auto& entry) {
    return down_now.count(entry.first) == 0;
  });
}

void FailureDetector::sweep() {
  if (!running_) return;
  const sim::Duration silence_limit =
      config_.period * static_cast<sim::Duration>(config_.suspicion_threshold);
  for (auto& [site_raw, state] : sites_) {
    if (state.suspected) continue;
    if (context_.sim.now() - state.last_beat <= silence_limit) continue;
    state.suspected = true;
    ++suspicions_raised_;
    const SiteId site{site_raw};
    SB_LOG(kWarn) << "detector: site " << site << " suspected down ("
                  << sim::to_ms(context_.sim.now() - state.last_beat)
                  << " ms silent)";
    if (site_down_) site_down_(site);
  }
  sweep_event_ = context_.sim.schedule(config_.period, [this] { sweep(); });
}

void FailureDetector::check_invariants() const {
  SWB_CHECK(config_.period > 0);
  SWB_CHECK(config_.suspicion_threshold > 0);
  std::uint64_t currently_suspected = 0;
  for (const auto& [site_raw, state] : sites_) {
    SWB_CHECK_LE(state.last_beat, context_.sim.now())
        << "site " << site_raw << " heard from the future";
    if (state.suspected) ++currently_suspected;
    // A relayed element must have survived the debounce window.
    for (const dataplane::ElementId element : state.down_reported) {
      const auto streak = state.down_streak.find(element);
      SWB_CHECK(streak != state.down_streak.end() &&
                streak->second >= config_.element_debounce_beats)
          << "element " << element << " relayed before the debounce window";
    }
  }
  // Every suspicion either recovered or is still open.
  SWB_CHECK_GE(suspicions_raised_, recoveries_observed_);
  SWB_CHECK_EQ(suspicions_raised_ - recoveries_observed_,
               currently_suspected)
      << "suspicion counters drifted from per-site state";
  SWB_CHECK(!running_ || sweep_event_.valid());
}

}  // namespace switchboard::control
