#include "control/failure_detector.hpp"

#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"

namespace switchboard::control {

FailureDetector::FailureDetector(ControlContext& context, SiteId home_site,
                                 FailureDetectorConfig config)
    : context_{context}, home_site_{home_site}, config_{config} {
  SWB_CHECK(config_.period > 0) << "detector period must be positive";
  SWB_CHECK(config_.suspicion_threshold > 0);
  SWB_CHECK(config_.element_debounce_beats > 0);
}

void FailureDetector::set_site_down_callback(SiteCallback callback) {
  const swb::MutexLock lock{mutex_};
  site_down_ = std::move(callback);
}

void FailureDetector::set_site_up_callback(SiteCallback callback) {
  const swb::MutexLock lock{mutex_};
  site_up_ = std::move(callback);
}

void FailureDetector::set_element_down_callback(ElementCallback callback) {
  const swb::MutexLock lock{mutex_};
  element_down_ = std::move(callback);
}

void FailureDetector::watch_site(SiteId site) {
  watch_heartbeats(site, bus::health_topic(site));
}

void FailureDetector::watch_heartbeats(SiteId key, const bus::Topic& topic) {
  {
    const swb::MutexLock lock{mutex_};
    if (sites_.count(key.value()) != 0) return;
    SiteState state;
    state.last_beat = context_.sim.now();
    sites_[key.value()] = state;
  }
  // Subscribe outside the lock: health topics are transient (never
  // retained) so no replay fires here, but the bus takes its own locks.
  context_.bus.subscribe(home_site_, topic,
                         [this](const bus::Message& message) {
                           if (const auto beat =
                                   parse_heartbeat(message.payload)) {
                             on_heartbeat(*beat);
                           }
                         });
}

void FailureDetector::start() {
  const swb::MutexLock lock{mutex_};
  if (running_) return;
  running_ = true;
  sweep_event_ = context_.sim.schedule(config_.period, [this] { sweep(); });
}

void FailureDetector::stop() {
  const swb::MutexLock lock{mutex_};
  running_ = false;
  if (sweep_event_.valid()) {
    context_.sim.cancel(sweep_event_);
    sweep_event_ = sim::EventHandle{};
  }
}

void FailureDetector::resync() {
  const swb::MutexLock lock{mutex_};
  for (auto& [site_raw, state] : sites_) {
    state.down_reported.clear();
    state.down_streak.clear();
  }
}

bool FailureDetector::suspects(SiteId site) const {
  const swb::MutexLock lock{mutex_};
  const auto it = sites_.find(site.value());
  return it != sites_.end() && it->second.suspected;
}

void FailureDetector::on_heartbeat(const Heartbeat& beat) {
  SiteCallback notify_up;
  ElementCallback notify_element;
  std::vector<dataplane::ElementId> relay;
  {
    const swb::MutexLock lock{mutex_};
    const auto it = sites_.find(beat.site.value());
    if (it == sites_.end()) return;   // never watched; ignore
    SiteState& state = it->second;
    // Health topics are transient (no retention, no retransmit), so an
    // out-of-order beat can only come from injected duplication/delay —
    // a stale sequence number must not refresh the liveness clock.
    if (beat.seq <= state.last_seq) return;
    state.last_seq = beat.seq;
    state.last_beat = context_.sim.now();
    if (state.suspected) {
      state.suspected = false;
      ++recoveries_observed_;
      SB_LOG(kInfo) << "detector: site " << beat.site << " is back (seq "
                    << beat.seq << ")";
      notify_up = site_up_;
    }

    // Element liveness rides in the beat: relay an element only after it
    // has been down `element_debounce_beats` beats in a row (a flap that
    // heals within the debounce window triggers nothing), relay once, and
    // forget recovered ones so a re-failure is debounced and reported
    // again.
    std::set<dataplane::ElementId> down_now{beat.down_elements.begin(),
                                            beat.down_elements.end()};
    for (const dataplane::ElementId element : down_now) {
      const std::uint32_t streak = ++state.down_streak[element];
      if (streak < config_.element_debounce_beats) continue;
      if (state.down_reported.insert(element).second) {
        ++element_failures_reported_;
        SB_LOG(kInfo) << "detector: element " << element << " down at site "
                      << beat.site << " (" << streak << " beats)";
        relay.push_back(element);
      }
    }
    std::erase_if(state.down_reported, [&](dataplane::ElementId element) {
      return down_now.count(element) == 0;
    });
    std::erase_if(state.down_streak, [&](const auto& entry) {
      return down_now.count(entry.first) == 0;
    });
    if (!relay.empty()) notify_element = element_down_;
  }
  // Callbacks outside the lock (contract in the header): site_up first so
  // the upper layer sees the site recovered before any element relays.
  if (notify_up) notify_up(beat.site);
  if (notify_element) {
    for (const dataplane::ElementId element : relay) {
      notify_element(element, beat.site);
    }
  }
}

void FailureDetector::sweep() {
  SiteCallback notify_down;
  std::vector<SiteId> newly_suspected;
  {
    const swb::MutexLock lock{mutex_};
    if (!running_) return;
    const sim::Duration silence_limit =
        config_.period *
        static_cast<sim::Duration>(config_.suspicion_threshold);
    for (auto& [site_raw, state] : sites_) {
      if (state.suspected) continue;
      if (context_.sim.now() - state.last_beat <= silence_limit) continue;
      state.suspected = true;
      ++suspicions_raised_;
      const SiteId site{site_raw};
      SB_LOG(kWarn) << "detector: site " << site << " suspected down ("
                    << sim::to_ms(context_.sim.now() - state.last_beat)
                    << " ms silent)";
      newly_suspected.push_back(site);
    }
    // Reschedule before notifying: a stop() from inside a callback then
    // cancels this handle instead of leaving a stray sweep scheduled.
    sweep_event_ = context_.sim.schedule(config_.period, [this] { sweep(); });
    if (!newly_suspected.empty()) notify_down = site_down_;
  }
  if (notify_down) {
    for (const SiteId site : newly_suspected) notify_down(site);
  }
}

void FailureDetector::check_invariants() const {
  const swb::MutexLock lock{mutex_};
  SWB_CHECK(config_.period > 0);
  SWB_CHECK(config_.suspicion_threshold > 0);
  std::uint64_t currently_suspected = 0;
  for (const auto& [site_raw, state] : sites_) {
    SWB_CHECK_LE(state.last_beat, context_.sim.now())
        << "site " << site_raw << " heard from the future";
    if (state.suspected) ++currently_suspected;
    // A relayed element must have survived the debounce window.
    for (const dataplane::ElementId element : state.down_reported) {
      const auto streak = state.down_streak.find(element);
      SWB_CHECK(streak != state.down_streak.end() &&
                streak->second >= config_.element_debounce_beats)
          << "element " << element << " relayed before the debounce window";
    }
  }
  // Every suspicion either recovered or is still open.
  SWB_CHECK_GE(suspicions_raised_, recoveries_observed_);
  SWB_CHECK_EQ(suspicions_raised_ - recoveries_observed_,
               currently_suspected)
      << "suspicion counters drifted from per-site state";
  SWB_CHECK(!running_ || sweep_event_.valid());
}

}  // namespace switchboard::control
