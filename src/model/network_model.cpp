#include "model/network_model.hpp"
#include <numeric>

#include "common/check.hpp"

namespace switchboard::model {

bool Vnf::deployed_at(SiteId site) const {
  for (const VnfDeployment& d : deployments) {
    if (d.site == site) return true;
  }
  return false;
}

double Vnf::capacity_at(SiteId site) const {
  for (const VnfDeployment& d : deployments) {
    if (d.site == site) return d.capacity;
  }
  return 0.0;
}

double Chain::total_traffic() const {
  double total = 0.0;
  for (std::size_t z = 1; z <= stage_count(); ++z) total += stage_traffic(z);
  return total;
}

NetworkModel::NetworkModel(net::Topology topology,
                           std::size_t routing_build_threads)
    : topology_{std::make_unique<net::Topology>(std::move(topology))},
      routing_{std::make_unique<net::Routing>(*topology_,
                                              routing_build_threads)},
      background_(topology_->link_count(), 0.0),
      site_at_node_(topology_->node_count()) {}

void NetworkModel::set_background_traffic(LinkId link, double volume) {
  SWB_CHECK(link.value() < background_.size());
  SWB_CHECK(volume >= 0);
  background_[link.value()] = volume;
}

double NetworkModel::background_traffic(LinkId link) const {
  SWB_CHECK(link.value() < background_.size());
  return background_[link.value()];
}

void NetworkModel::set_mlu_limit(double beta) {
  SWB_CHECK(beta > 0 && beta <= 1.0);
  beta_ = beta;
}

SiteId NetworkModel::add_site(NodeId node, double compute_capacity,
                              std::string name) {
  SWB_CHECK(node.value() < topology_->node_count());
  SWB_CHECK(!site_at_node_[node.value()].has_value());   // one site per node
  const SiteId id{static_cast<SiteId::underlying_type>(sites_.size())};
  if (name.empty()) name = "site@" + topology_->node(node).name;
  sites_.push_back(CloudSite{id, node, compute_capacity, std::move(name)});
  site_at_node_[node.value()] = id;
  return id;
}

const CloudSite& NetworkModel::site(SiteId id) const {
  SWB_CHECK(id.valid() && id.value() < sites_.size());
  return sites_[id.value()];
}

std::optional<SiteId> NetworkModel::site_at(NodeId node) const {
  SWB_CHECK(node.value() < site_at_node_.size());
  return site_at_node_[node.value()];
}

VnfId NetworkModel::add_vnf(std::string name, double load_per_unit) {
  SWB_CHECK(load_per_unit >= 0);
  const VnfId id{static_cast<VnfId::underlying_type>(vnfs_.size())};
  vnfs_.push_back(Vnf{id, std::move(name), load_per_unit, {}});
  return id;
}

void NetworkModel::deploy_vnf(VnfId vnf_id, SiteId site_id, double capacity) {
  SWB_CHECK(capacity > 0);
  Vnf& f = vnf_mutable(vnf_id);
  SWB_CHECK(!f.deployed_at(site_id));
  SWB_CHECK(site_id.value() < sites_.size());
  f.deployments.push_back(VnfDeployment{site_id, capacity});
}

void NetworkModel::undeploy_vnf(VnfId vnf_id, SiteId site_id) {
  Vnf& f = vnf_mutable(vnf_id);
  std::erase_if(f.deployments, [site_id](const VnfDeployment& d) {
    return d.site == site_id;
  });
}

void NetworkModel::set_vnf_site_capacity(VnfId vnf_id, SiteId site_id,
                                         double capacity) {
  // 0 is legal: failure recovery zeroes a dead pool's capacity without
  // undeploying it (the deployment comes back on restore).
  SWB_CHECK(capacity >= 0);
  Vnf& f = vnf_mutable(vnf_id);
  for (VnfDeployment& d : f.deployments) {
    if (d.site == site_id) {
      d.capacity = capacity;
      return;
    }
  }
  SWB_CHECK(false) << "set_vnf_site_capacity: VNF not deployed at site";
}

void NetworkModel::set_site_capacity(SiteId site_id, double capacity) {
  SWB_CHECK(site_id.valid() && site_id.value() < sites_.size());
  SWB_CHECK(capacity >= 0);
  sites_[site_id.value()].compute_capacity = capacity;
}

const Vnf& NetworkModel::vnf(VnfId id) const {
  SWB_CHECK(id.valid() && id.value() < vnfs_.size());
  return vnfs_[id.value()];
}

Vnf& NetworkModel::vnf_mutable(VnfId id) {
  SWB_CHECK(id.valid() && id.value() < vnfs_.size());
  return vnfs_[id.value()];
}

ChainId NetworkModel::add_chain(Chain chain) {
  const ChainId id{static_cast<ChainId::underlying_type>(chains_.size())};
  chain.id = id;
  if (chain.name.empty()) chain.name = "chain" + std::to_string(id.value());
  chains_.push_back(std::move(chain));
  return id;
}

const Chain& NetworkModel::chain(ChainId id) const {
  SWB_CHECK(id.valid() && id.value() < chains_.size());
  return chains_[id.value()];
}

Chain& NetworkModel::chain_mutable(ChainId id) {
  SWB_CHECK(id.valid() && id.value() < chains_.size());
  return chains_[id.value()];
}

std::vector<StageEndpoint> NetworkModel::stage_sources(
    const Chain& chain, std::size_t z) const {
  SWB_CHECK(z >= 1 && z <= chain.stage_count());
  std::vector<StageEndpoint> endpoints;
  if (z == 1) {
    endpoints.push_back(StageEndpoint{chain.ingress, SiteId{}});
    return endpoints;
  }
  const Vnf& f = vnf(chain.vnfs[z - 2]);
  endpoints.reserve(f.deployments.size());
  for (const VnfDeployment& d : f.deployments) {
    endpoints.push_back(StageEndpoint{site(d.site).node, d.site});
  }
  return endpoints;
}

std::vector<StageEndpoint> NetworkModel::stage_destinations(
    const Chain& chain, std::size_t z) const {
  SWB_CHECK(z >= 1 && z <= chain.stage_count());
  std::vector<StageEndpoint> endpoints;
  if (z == chain.stage_count()) {
    endpoints.push_back(StageEndpoint{chain.egress, SiteId{}});
    return endpoints;
  }
  const Vnf& f = vnf(chain.vnfs[z - 1]);
  endpoints.reserve(f.deployments.size());
  for (const VnfDeployment& d : f.deployments) {
    endpoints.push_back(StageEndpoint{site(d.site).node, d.site});
  }
  return endpoints;
}

Status NetworkModel::validate() const {
  for (const Chain& c : chains_) {
    if (c.ingress.value() >= topology_->node_count() ||
        c.egress.value() >= topology_->node_count()) {
      return Status{ErrorCode::kInvalidArgument,
                    c.name + ": ingress/egress node out of range"};
    }
    if (c.forward_traffic.size() != c.stage_count() ||
        c.reverse_traffic.size() != c.stage_count()) {
      return Status{ErrorCode::kInvalidArgument,
                    c.name + ": traffic vectors must have |F_c|+1 entries"};
    }
    for (const VnfId f : c.vnfs) {
      if (!f.valid() || f.value() >= vnfs_.size()) {
        return Status{ErrorCode::kInvalidArgument,
                      c.name + ": unknown VNF in chain"};
      }
      if (vnfs_[f.value()].deployments.empty()) {
        return Status{ErrorCode::kInvalidArgument,
                      c.name + ": VNF " + vnfs_[f.value()].name +
                          " has no deployment sites"};
      }
    }
    for (std::size_t z = 1; z <= c.stage_count(); ++z) {
      if (c.forward_traffic[z - 1] < 0 || c.reverse_traffic[z - 1] < 0) {
        return Status{ErrorCode::kInvalidArgument,
                      c.name + ": negative stage traffic"};
      }
    }
  }
  for (const Vnf& f : vnfs_) {
    double total = 0.0;
    for (const VnfDeployment& d : f.deployments) {
      if (d.site.value() >= sites_.size()) {
        return Status{ErrorCode::kInvalidArgument,
                      f.name + ": deployment at unknown site"};
      }
      total += d.capacity;
    }
    (void)total;
  }
  return Status::ok_status();
}

void NetworkModel::scale_all_traffic(double factor) {
  SWB_CHECK(factor >= 0);
  for (Chain& c : chains_) {
    for (auto& w : c.forward_traffic) w *= factor;
    for (auto& v : c.reverse_traffic) v *= factor;
  }
}

}  // namespace switchboard::model
