#include "model/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "net/traffic_matrix.hpp"

namespace switchboard::model {

NetworkModel make_scenario(const ScenarioParams& params) {
  SWB_CHECK(params.coverage > 0.0 && params.coverage <= 1.0);
  SWB_CHECK(params.min_chain_length >= 1);
  SWB_CHECK(params.min_chain_length <= params.max_chain_length);

  Rng rng{params.seed};
  NetworkModel model{net::make_tier1_topology(params.topology),
                     params.routing_build_threads};
  const net::Topology& topo = model.topology();
  const std::size_t n = topo.node_count();

  model.set_mlu_limit(params.mlu_limit);

  // Every node hosts a homogeneous cloud site.
  std::vector<SiteId> sites;
  sites.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sites.push_back(
        model.add_site(NodeId{static_cast<NodeId::underlying_type>(i)},
                       params.site_capacity));
  }

  // VNF catalog: each VNF picks a random `coverage` fraction of sites.
  const std::size_t sites_per_vnf = std::max<std::size_t>(
      1, static_cast<std::size_t>(params.coverage *
                                  static_cast<double>(sites.size()) + 0.5));
  std::vector<VnfId> catalog;
  std::vector<double> traffic_multiplier;
  std::vector<std::vector<VnfId>> vnfs_at_site(sites.size());
  catalog.reserve(params.vnf_count);
  for (std::size_t f = 0; f < params.vnf_count; ++f) {
    const VnfId vnf =
        model.add_vnf("vnf" + std::to_string(f), params.cpu_per_unit);
    catalog.push_back(vnf);
    traffic_multiplier.push_back(
        params.vnf_traffic_sigma > 0
            ? std::exp(rng.normal(0.0, params.vnf_traffic_sigma))
            : 1.0);
    for (const std::size_t s :
         rng.sample_without_replacement(sites.size(), sites_per_vnf)) {
      vnfs_at_site[s].push_back(vnf);
    }
  }
  // Site capacity divides equally among the VNFs present at the site.
  for (std::size_t s = 0; s < sites.size(); ++s) {
    const auto& present = vnfs_at_site[s];
    if (present.empty()) continue;
    const double share =
        params.site_capacity / static_cast<double>(present.size());
    for (const VnfId vnf : present) {
      model.deploy_vnf(vnf, sites[s], share);
    }
  }

  // Chain demand weights follow a gravity traffic matrix: a chain sourced
  // at a heavy node carries proportionally more traffic.
  net::GravityParams gravity;
  gravity.seed = rng();
  gravity.total_volume = params.total_chain_traffic;
  const net::TrafficMatrix tm = net::make_gravity_matrix(topo, gravity);

  struct PendingChain {
    NodeId ingress;
    NodeId egress;
    std::vector<VnfId> vnfs;
    double weight;
  };
  std::vector<PendingChain> pending;
  pending.reserve(params.chain_count);
  double weight_total = 0.0;
  for (std::size_t c = 0; c < params.chain_count; ++c) {
    PendingChain pc;
    pc.ingress = NodeId{static_cast<NodeId::underlying_type>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))};
    do {
      pc.egress = NodeId{static_cast<NodeId::underlying_type>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))};
    } while (pc.egress == pc.ingress);

    const auto length = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(
            std::min(params.min_chain_length, params.vnf_count)),
        static_cast<std::int64_t>(
            std::min(params.max_chain_length, params.vnf_count))));
    // Pick distinct VNFs, then order them by catalog id: the "canonical
    // order of VNFs in service chains" (firewall before NAT, etc.).
    auto picks = rng.sample_without_replacement(params.vnf_count, length);
    std::sort(picks.begin(), picks.end());
    pc.vnfs.reserve(length);
    for (const std::size_t p : picks) pc.vnfs.push_back(catalog[p]);

    pc.weight = tm.node_out_volume(pc.ingress);
    weight_total += pc.weight;
    pending.push_back(std::move(pc));
  }

  for (PendingChain& pc : pending) {
    Chain chain;
    chain.ingress = pc.ingress;
    chain.egress = pc.egress;
    chain.vnfs = std::move(pc.vnfs);
    const double traffic = weight_total > 0
        ? params.total_chain_traffic * pc.weight / weight_total
        : params.total_chain_traffic /
              static_cast<double>(params.chain_count);
    const std::size_t stages = chain.vnfs.size() + 1;
    chain.forward_traffic.resize(stages);
    chain.reverse_traffic.resize(stages);
    double stage_traffic = traffic;
    for (std::size_t z = 0; z < stages; ++z) {
      chain.forward_traffic[z] = stage_traffic;
      chain.reverse_traffic[z] = stage_traffic * params.reverse_ratio;
      if (z < chain.vnfs.size()) {
        stage_traffic *= traffic_multiplier[chain.vnfs[z].value()];
      }
    }
    model.add_chain(std::move(chain));
  }

  // Background (non-Switchboard) traffic: a second gravity matrix routed
  // over the underlay's ECMP shares, at `background_ratio` of chain volume.
  net::GravityParams bg;
  bg.seed = rng();
  bg.total_volume = params.background_ratio * params.total_chain_traffic;
  const net::TrafficMatrix bg_tm = net::make_gravity_matrix(topo, bg);
  std::vector<double> link_load(topo.link_count(), 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      if (s == t) continue;
      const NodeId src{static_cast<NodeId::underlying_type>(s)};
      const NodeId dst{static_cast<NodeId::underlying_type>(t)};
      const double demand = bg_tm.demand(src, dst);
      if (demand <= 0) continue;
      for (const net::LinkShare& share : model.routing().link_shares(src, dst)) {
        link_load[share.link.value()] += demand * share.fraction;
      }
    }
  }
  for (std::size_t e = 0; e < link_load.size(); ++e) {
    model.set_background_traffic(LinkId{static_cast<LinkId::underlying_type>(e)},
                                 link_load[e]);
  }

  return model;
}

TwoSiteModel make_two_site_model(const TwoSiteParams& params) {
  net::Topology topo;
  const NodeId a = topo.add_node("siteA", 0, 0);
  const NodeId b = topo.add_node("siteB",
                                 params.inter_site_delay_ms * 200.0, 0);
  topo.add_duplex_link(a, b, params.link_capacity,
                       params.inter_site_delay_ms);

  NetworkModel model{std::move(topo)};
  const SiteId sa = model.add_site(a, params.site_capacity, "A");
  const SiteId sb = model.add_site(b, params.site_capacity, "B");
  const VnfId vnf = model.add_vnf("firewall", params.vnf_load_per_unit);
  model.deploy_vnf(vnf, sa, params.vnf_capacity_a);
  model.deploy_vnf(vnf, sb, params.vnf_capacity_b);
  return TwoSiteModel{std::move(model), sa, sb, vnf, a, b};
}

}  // namespace switchboard::model
