// Random scenario generator mirroring the simulation setup of Section 7.3:
// a tier-1-like backbone where every node hosts a homogeneous cloud site, a
// VNF catalog placed at a random `coverage` fraction of sites (site capacity
// divided equally among the VNFs present), and randomly-sourced chains of
// 3-5 VNFs whose order respects a global VNF ordering and whose traffic is
// proportional to the gravity-model volume at the ingress.
#pragma once

#include <cstdint>

#include "model/network_model.hpp"
#include "net/topology_gen.hpp"

namespace switchboard::model {

struct ScenarioParams {
  net::Tier1Params topology{};

  // Cloud.
  double site_capacity{1000.0};   // m_s, homogeneous (paper Section 7.3)

  // VNF catalog.
  std::size_t vnf_count{20};
  double coverage{0.5};           // fraction of sites hosting each VNF
  double cpu_per_unit{1.0};       // l_f (the paper's CPU/byte knob)

  // Chains.
  std::size_t chain_count{200};
  std::size_t min_chain_length{3};
  std::size_t max_chain_length{5};
  double total_chain_traffic{400.0};   // sum of w_c over chains
  double reverse_ratio{0.25};          // v_cz = ratio * w_cz
  /// Lognormal sigma of each VNF's traffic multiplier: a VNF may shrink
  /// (compressor, cache) or grow (decryptor) the traffic it forwards, so
  /// stage traffic w_cz varies along the chain.  0 = volume-preserving.
  double vnf_traffic_sigma{0.0};

  // Underlay.
  double background_ratio{0.25};   // background:switchboard = 1:4
  double mlu_limit{1.0};

  /// Threads for the all-pairs routing precompute (see net::Routing);
  /// the scenario is identical for any value.
  std::size_t routing_build_threads{1};

  std::uint64_t seed{11};
};

/// Builds the full network model for one experiment run.
[[nodiscard]] NetworkModel make_scenario(const ScenarioParams& params);

/// A small two-site model used by end-to-end comparison experiments
/// (Fig. 11): sites A and B joined by one wide-area link with the given
/// one-way delay, a single VNF deployed at both with the given capacities.
struct TwoSiteParams {
  double inter_site_delay_ms{75.0};   // one-way (AWS testbed: 150 ms RTT)
  double link_capacity{100.0};
  double site_capacity{100.0};
  double vnf_capacity_a{10.0};
  double vnf_capacity_b{10.0};
  double vnf_load_per_unit{1.0};
};

struct TwoSiteModel {
  NetworkModel model;
  SiteId site_a;
  SiteId site_b;
  VnfId vnf;
  NodeId node_a;
  NodeId node_b;
};

[[nodiscard]] TwoSiteModel make_two_site_model(const TwoSiteParams& params);

}  // namespace switchboard::model
