// Global Switchboard's network model (paper Table 1).
//
// Aggregates everything the traffic-engineering layer needs:
//   * the underlay: nodes N, links E (b_e), routing fractions r_{n1 n2 e},
//     delays d_{n1 n2}, background traffic g_e, and the MLU bound beta;
//   * cloud sites S (subset of N) with compute capacity m_s;
//   * the VNF catalog F: deployment sites S_f, per-site capacity m_sf, and
//     load per unit traffic l_f;
//   * customer chains C: ingress i_c, egress e_c, VNF list F_c, and
//     per-stage forward/reverse traffic w_cz / v_cz.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace switchboard::model {

struct CloudSite {
  SiteId id;
  NodeId node;                 // colocated network node
  double compute_capacity{0};  // m_s
  std::string name;
};

/// One deployment of a VNF at a site, with capacity m_sf.
struct VnfDeployment {
  SiteId site;
  double capacity{0};
};

struct Vnf {
  VnfId id;
  std::string name;
  double load_per_unit{1.0};   // l_f: compute load per unit of traffic
  std::vector<VnfDeployment> deployments;   // the sites S_f

  [[nodiscard]] bool deployed_at(SiteId site) const;
  [[nodiscard]] double capacity_at(SiteId site) const;   // 0 if absent
};

struct Chain {
  ChainId id;
  std::string name;
  NodeId ingress;   // i_c
  NodeId egress;    // e_c
  std::vector<VnfId> vnfs;             // F_c, ordered
  std::vector<double> forward_traffic; // w_cz, size |F_c| + 1
  std::vector<double> reverse_traffic; // v_cz, size |F_c| + 1

  /// Number of stages = |F_c| + 1 (paper's z ranges over 1..|F_c|+1).
  [[nodiscard]] std::size_t stage_count() const { return vnfs.size() + 1; }
  [[nodiscard]] double stage_traffic(std::size_t z) const {
    return forward_traffic[z - 1] + reverse_traffic[z - 1];
  }
  [[nodiscard]] double total_traffic() const;
};

/// One candidate endpoint of a chain stage: a network node, plus the cloud
/// site when the endpoint is a VNF location (invalid SiteId for the chain's
/// ingress/egress edge nodes).
struct StageEndpoint {
  NodeId node;
  SiteId site;   // invalid for ingress/egress endpoints
};

class NetworkModel {
 public:
  /// Takes ownership of the topology; routing (delays + ECMP fractions) is
  /// computed immediately.  The topology lives behind a pointer so the
  /// model is safely movable (Routing holds a reference to it).
  /// `routing_build_threads` > 1 parallelizes the routing precompute
  /// (identical output for any thread count; see net::Routing).
  explicit NetworkModel(net::Topology topology,
                        std::size_t routing_build_threads = 1);

  NetworkModel(NetworkModel&&) = default;
  NetworkModel& operator=(NetworkModel&&) = default;

  // --- underlay -----------------------------------------------------------
  [[nodiscard]] const net::Topology& topology() const { return *topology_; }
  [[nodiscard]] const net::Routing& routing() const { return *routing_; }
  [[nodiscard]] double delay_ms(NodeId a, NodeId b) const {
    return routing_->delay_ms(a, b);
  }
  void set_background_traffic(LinkId link, double volume);
  [[nodiscard]] double background_traffic(LinkId link) const;
  void set_mlu_limit(double beta);   // in (0, 1]
  [[nodiscard]] double mlu_limit() const { return beta_; }

  // --- cloud sites --------------------------------------------------------
  SiteId add_site(NodeId node, double compute_capacity, std::string name = "");
  [[nodiscard]] const CloudSite& site(SiteId id) const;
  [[nodiscard]] const std::vector<CloudSite>& sites() const { return sites_; }
  /// The site colocated with `node`, if any.
  [[nodiscard]] std::optional<SiteId> site_at(NodeId node) const;

  // --- VNF catalog --------------------------------------------------------
  VnfId add_vnf(std::string name, double load_per_unit);
  void deploy_vnf(VnfId vnf, SiteId site, double capacity);
  /// Removes a deployment (used by planners for what-if evaluation).
  void undeploy_vnf(VnfId vnf, SiteId site);
  void set_vnf_site_capacity(VnfId vnf, SiteId site, double capacity);
  void set_site_capacity(SiteId site, double capacity);
  [[nodiscard]] const Vnf& vnf(VnfId id) const;
  [[nodiscard]] Vnf& vnf_mutable(VnfId id);
  [[nodiscard]] const std::vector<Vnf>& vnfs() const { return vnfs_; }

  // --- chains -------------------------------------------------------------
  ChainId add_chain(Chain chain);   // id assigned by the model
  [[nodiscard]] const Chain& chain(ChainId id) const;
  [[nodiscard]] Chain& chain_mutable(ChainId id);
  [[nodiscard]] const std::vector<Chain>& chains() const { return chains_; }

  /// Candidate sources of stage z of a chain: Eq. (1).
  [[nodiscard]] std::vector<StageEndpoint> stage_sources(
      const Chain& chain, std::size_t z) const;
  /// Candidate destinations of stage z of a chain: Eq. (2).
  [[nodiscard]] std::vector<StageEndpoint> stage_destinations(
      const Chain& chain, std::size_t z) const;

  /// Structural validation (sizes, references, deployments).
  [[nodiscard]] Status validate() const;

  /// Scales the traffic of every chain (and stage) by `factor`.
  void scale_all_traffic(double factor);

 private:
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<net::Routing> routing_;
  std::vector<double> background_;   // per link
  double beta_{1.0};
  std::vector<CloudSite> sites_;
  std::vector<std::optional<SiteId>> site_at_node_;
  std::vector<Vnf> vnfs_;
  std::vector<Chain> chains_;
};

}  // namespace switchboard::model
