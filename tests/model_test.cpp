#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "model/network_model.hpp"
#include "model/scenario.hpp"
#include "net/topology_gen.hpp"

namespace switchboard::model {
namespace {

NetworkModel make_line_model() {
  return NetworkModel{net::make_line_topology(3, 10.0, 5.0)};
}

TEST(NetworkModel, SitesColocateWithNodes) {
  NetworkModel m = make_line_model();
  const SiteId s = m.add_site(NodeId{1}, 100.0, "mid");
  EXPECT_EQ(m.site(s).node, NodeId{1});
  EXPECT_EQ(m.site_at(NodeId{1}), s);
  EXPECT_FALSE(m.site_at(NodeId{0}).has_value());
}

TEST(NetworkModel, VnfDeployment) {
  NetworkModel m = make_line_model();
  const SiteId s0 = m.add_site(NodeId{0}, 100.0);
  const SiteId s2 = m.add_site(NodeId{2}, 100.0);
  const VnfId f = m.add_vnf("fw", 2.0);
  m.deploy_vnf(f, s0, 30.0);
  m.deploy_vnf(f, s2, 40.0);
  EXPECT_TRUE(m.vnf(f).deployed_at(s0));
  EXPECT_FALSE(m.vnf(f).deployed_at(SiteId{99}));
  EXPECT_DOUBLE_EQ(m.vnf(f).capacity_at(s2), 40.0);
  EXPECT_DOUBLE_EQ(m.vnf(f).capacity_at(SiteId{99}), 0.0);
  m.undeploy_vnf(f, s0);
  EXPECT_FALSE(m.vnf(f).deployed_at(s0));
  m.set_vnf_site_capacity(f, s2, 55.0);
  EXPECT_DOUBLE_EQ(m.vnf(f).capacity_at(s2), 55.0);
}

TEST(NetworkModel, ChainStageAccessors) {
  NetworkModel m = make_line_model();
  const SiteId s1 = m.add_site(NodeId{1}, 100.0);
  const VnfId f = m.add_vnf("fw", 1.0);
  m.deploy_vnf(f, s1, 10.0);

  Chain chain;
  chain.ingress = NodeId{0};
  chain.egress = NodeId{2};
  chain.vnfs = {f};
  chain.forward_traffic = {4.0, 4.0};
  chain.reverse_traffic = {1.0, 1.0};
  const ChainId c = m.add_chain(std::move(chain));

  const Chain& stored = m.chain(c);
  EXPECT_EQ(stored.stage_count(), 2u);
  EXPECT_DOUBLE_EQ(stored.stage_traffic(1), 5.0);
  EXPECT_DOUBLE_EQ(stored.total_traffic(), 10.0);

  const auto src1 = m.stage_sources(stored, 1);
  ASSERT_EQ(src1.size(), 1u);
  EXPECT_EQ(src1[0].node, NodeId{0});
  EXPECT_FALSE(src1[0].site.valid());

  const auto dst1 = m.stage_destinations(stored, 1);
  ASSERT_EQ(dst1.size(), 1u);
  EXPECT_EQ(dst1[0].node, NodeId{1});
  EXPECT_EQ(dst1[0].site, s1);

  const auto dst2 = m.stage_destinations(stored, 2);
  ASSERT_EQ(dst2.size(), 1u);
  EXPECT_EQ(dst2[0].node, NodeId{2});
  EXPECT_FALSE(dst2[0].site.valid());
}

TEST(NetworkModel, ValidateCatchesBadTrafficVectors) {
  NetworkModel m = make_line_model();
  const SiteId s = m.add_site(NodeId{1}, 100.0);
  const VnfId f = m.add_vnf("fw", 1.0);
  m.deploy_vnf(f, s, 10.0);
  Chain chain;
  chain.ingress = NodeId{0};
  chain.egress = NodeId{2};
  chain.vnfs = {f};
  chain.forward_traffic = {1.0};          // should be 2 entries
  chain.reverse_traffic = {1.0, 1.0};
  m.add_chain(std::move(chain));
  EXPECT_FALSE(m.validate().ok());
}

TEST(NetworkModel, ValidateCatchesUndeployedVnf) {
  NetworkModel m = make_line_model();
  m.add_site(NodeId{1}, 100.0);
  const VnfId f = m.add_vnf("fw", 1.0);   // never deployed
  Chain chain;
  chain.ingress = NodeId{0};
  chain.egress = NodeId{2};
  chain.vnfs = {f};
  chain.forward_traffic = {1.0, 1.0};
  chain.reverse_traffic = {0.0, 0.0};
  m.add_chain(std::move(chain));
  EXPECT_FALSE(m.validate().ok());
}

TEST(NetworkModel, ScaleAllTraffic) {
  NetworkModel m = make_line_model();
  const SiteId s = m.add_site(NodeId{1}, 100.0);
  const VnfId f = m.add_vnf("fw", 1.0);
  m.deploy_vnf(f, s, 10.0);
  Chain chain;
  chain.ingress = NodeId{0};
  chain.egress = NodeId{2};
  chain.vnfs = {f};
  chain.forward_traffic = {2.0, 2.0};
  chain.reverse_traffic = {1.0, 1.0};
  const ChainId c = m.add_chain(std::move(chain));
  m.scale_all_traffic(2.0);
  EXPECT_DOUBLE_EQ(m.chain(c).forward_traffic[0], 4.0);
  EXPECT_DOUBLE_EQ(m.chain(c).reverse_traffic[1], 2.0);
}

TEST(NetworkModel, MluAndBackground) {
  NetworkModel m = make_line_model();
  m.set_mlu_limit(0.8);
  EXPECT_DOUBLE_EQ(m.mlu_limit(), 0.8);
  m.set_background_traffic(LinkId{0}, 3.5);
  EXPECT_DOUBLE_EQ(m.background_traffic(LinkId{0}), 3.5);
  EXPECT_DOUBLE_EQ(m.background_traffic(LinkId{1}), 0.0);
}

// ---------------------------------------------------------------- Scenario

TEST(Scenario, GeneratesValidModel) {
  ScenarioParams params;
  params.chain_count = 50;
  params.vnf_count = 10;
  const NetworkModel m = make_scenario(params);
  EXPECT_TRUE(m.validate().ok());
  EXPECT_EQ(m.chains().size(), 50u);
  EXPECT_EQ(m.vnfs().size(), 10u);
  EXPECT_EQ(m.sites().size(), m.topology().node_count());
}

TEST(Scenario, ChainLengthsInRange) {
  ScenarioParams params;
  params.chain_count = 100;
  params.min_chain_length = 3;
  params.max_chain_length = 5;
  const NetworkModel m = make_scenario(params);
  for (const Chain& c : m.chains()) {
    EXPECT_GE(c.vnfs.size(), 3u);
    EXPECT_LE(c.vnfs.size(), 5u);
    EXPECT_NE(c.ingress, c.egress);
  }
}

TEST(Scenario, VnfOrderIsCanonical) {
  // Within any chain, VNF ids must be strictly increasing (the scenario's
  // global order stands in for "firewall before NAT" conventions).
  const NetworkModel m = make_scenario({});
  for (const Chain& c : m.chains()) {
    for (std::size_t i = 1; i < c.vnfs.size(); ++i) {
      EXPECT_LT(c.vnfs[i - 1].value(), c.vnfs[i].value());
    }
  }
}

TEST(Scenario, TotalTrafficMatchesParam) {
  ScenarioParams params;
  params.total_chain_traffic = 250.0;
  const NetworkModel m = make_scenario(params);
  double total = 0.0;
  for (const Chain& c : m.chains()) total += c.forward_traffic[0];
  EXPECT_NEAR(total, 250.0, 1e-6);
}

TEST(Scenario, SiteCapacityDividedAmongVnfs) {
  ScenarioParams params;
  params.site_capacity = 120.0;
  params.vnf_count = 6;
  params.coverage = 1.0;   // every VNF everywhere -> share = 120/6
  const NetworkModel m = make_scenario(params);
  for (const Vnf& f : m.vnfs()) {
    ASSERT_EQ(f.deployments.size(), m.sites().size());
    for (const VnfDeployment& d : f.deployments) {
      EXPECT_NEAR(d.capacity, 20.0, 1e-9);
    }
  }
}

TEST(Scenario, CoverageControlsDeploymentCount) {
  ScenarioParams params;
  params.coverage = 0.25;
  const NetworkModel m = make_scenario(params);
  const auto expected = static_cast<std::size_t>(
      0.25 * static_cast<double>(m.sites().size()) + 0.5);
  for (const Vnf& f : m.vnfs()) {
    EXPECT_EQ(f.deployments.size(), expected);
  }
}

TEST(Scenario, BackgroundTrafficPresent) {
  ScenarioParams params;
  params.background_ratio = 0.25;
  const NetworkModel m = make_scenario(params);
  double bg = 0.0;
  for (const net::Link& link : m.topology().links()) {
    bg += m.background_traffic(link.id);
  }
  EXPECT_GT(bg, 0.0);
}

TEST(Scenario, DeterministicForSeed) {
  ScenarioParams params;
  params.seed = 99;
  const NetworkModel a = make_scenario(params);
  const NetworkModel b = make_scenario(params);
  ASSERT_EQ(a.chains().size(), b.chains().size());
  for (std::size_t i = 0; i < a.chains().size(); ++i) {
    const ChainId c{static_cast<ChainId::underlying_type>(i)};
    EXPECT_EQ(a.chain(c).ingress, b.chain(c).ingress);
    EXPECT_EQ(a.chain(c).vnfs, b.chain(c).vnfs);
    EXPECT_DOUBLE_EQ(a.chain(c).forward_traffic[0],
                     b.chain(c).forward_traffic[0]);
  }
}

TEST(Scenario, VnfTrafficMultipliersVaryStageTraffic) {
  ScenarioParams params;
  params.vnf_traffic_sigma = 0.5;
  params.chain_count = 50;
  const NetworkModel m = make_scenario(params);
  // At sigma 0.5, many chains must have non-uniform stage traffic.
  int varying = 0;
  for (const Chain& c : m.chains()) {
    for (std::size_t z = 1; z < c.stage_count(); ++z) {
      if (std::abs(c.forward_traffic[z] - c.forward_traffic[0]) > 1e-9) {
        ++varying;
        break;
      }
    }
    // Reverse traffic keeps its ratio to forward at every stage.
    for (std::size_t z = 0; z < c.stage_count(); ++z) {
      EXPECT_NEAR(c.reverse_traffic[z], 0.25 * c.forward_traffic[z], 1e-9);
    }
  }
  EXPECT_GT(varying, 25);
}

TEST(Scenario, ZeroSigmaKeepsUniformStageTraffic) {
  ScenarioParams params;
  params.vnf_traffic_sigma = 0.0;
  const NetworkModel m = make_scenario(params);
  for (const Chain& c : m.chains()) {
    for (std::size_t z = 1; z < c.stage_count(); ++z) {
      EXPECT_DOUBLE_EQ(c.forward_traffic[z], c.forward_traffic[0]);
    }
  }
}

TEST(Scenario, TwoSiteModel) {
  TwoSiteParams params;
  params.inter_site_delay_ms = 40.0;
  TwoSiteModel two = make_two_site_model(params);
  EXPECT_TRUE(two.model.validate().ok());
  EXPECT_DOUBLE_EQ(two.model.delay_ms(two.node_a, two.node_b), 40.0);
  EXPECT_TRUE(two.model.vnf(two.vnf).deployed_at(two.site_a));
  EXPECT_TRUE(two.model.vnf(two.vnf).deployed_at(two.site_b));
}

}  // namespace
}  // namespace switchboard::model
