// Threaded forwarder tests: RSS worker partitioning, batch processing under
// real threads, and the determinism guarantee — the threaded data plane
// (driven the way the simulator drives it, a BarrierWorkerPool batch per
// event) produces flow pinnings IDENTICAL to the single-threaded path.
// Runs under the tsan preset via CI's *_concurrency_test glob.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <span>
#include <thread>
#include <tuple>
#include <vector>

#include "dataplane/forwarder.hpp"
#include "dataplane/traffic_gen.hpp"
#include "sim/parallel.hpp"

namespace switchboard::dataplane {
namespace {

constexpr std::uint32_t kFlows = 4096;

void install_two_way_rule(Forwarder& forwarder) {
  LoadBalanceRule rule;
  rule.vnf_instances.add(100, 1.0);
  rule.vnf_instances.add(101, 1.0);
  rule.next_forwarders.add(200, 1.0);
  rule.next_forwarders.add(201, 1.0);
  forwarder.rules().install(Labels{1, 1}, std::move(rule));
}

/// All flow pinnings of a forwarder, keyed by the flow's source ip (the
/// generator makes src_ip unique per flow).
std::map<std::uint32_t, std::tuple<ElementId, ElementId, ElementId>>
pinnings_of(Forwarder& forwarder) {
  std::map<std::uint32_t, std::tuple<ElementId, ElementId, ElementId>> out;
  forwarder.flow_table().for_each(
      [&](const Labels&, const FiveTuple& tuple, const FlowEntry& entry) {
        out[tuple.src_ip] = {entry.vnf_instance, entry.next_forwarder,
                             entry.prev_element};
      });
  return out;
}

TEST(ForwarderConcurrency, WorkerForPartitionsBothDirections) {
  const Forwarder forwarder{1, 1024, 4};
  TrafficGenConfig config;
  config.flow_count = 256;
  PacketStream stream{config};
  for (std::uint32_t f = 0; f < 256; ++f) {
    Packet fwd = stream.next();
    Packet rev = fwd;
    rev.flow = fwd.flow.reversed();
    rev.direction = Direction::kReverse;
    // Forward and reverse packets of one connection go to the same worker.
    EXPECT_EQ(forwarder.worker_for(fwd), forwarder.worker_for(rev));
    EXPECT_LT(forwarder.worker_for(fwd), forwarder.worker_count());
  }
}

// N worker threads drive process_batch over their RSS share concurrently;
// every flow ends up pinned exactly once and counters add up.
TEST(ForwarderConcurrency, ThreadedBatchesPinEveryFlowOnce) {
  constexpr std::size_t kWorkers = 4;
  Forwarder forwarder{1, kFlows * 2, kWorkers};
  install_two_way_rule(forwarder);

  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&forwarder, w] {
      TrafficGenConfig config;
      config.flow_count = kFlows;
      config.worker_count = kWorkers;
      config.worker_index = static_cast<std::uint32_t>(w);
      PacketStream stream{config};
      // Two passes over the worker's owned flows: first creates state,
      // second must hit it.
      const std::size_t owned = stream.owned_flow_count();
      for (std::size_t i = 0; i < 2 * owned; ++i) {
        Packet p = stream.next();
        p.arrival_source = 50;
        EXPECT_EQ(forwarder.worker_for(p), w);
        const ForwardAction action = forwarder.process_from_wire(p);
        EXPECT_EQ(action.type, ActionType::kDeliverToAttached);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(forwarder.flow_table().size(), kFlows);
  forwarder.flow_table().check_invariants();
  const ForwarderCounters counters = forwarder.counters();
  EXPECT_EQ(counters.from_wire, 2u * kFlows);
  EXPECT_EQ(counters.flow_misses, kFlows);
  EXPECT_EQ(counters.drops, 0u);
}

// The determinism guarantee behind the threaded simulator path: the SAME
// traffic processed (a) single-threaded in arrival order and (b) by a
// BarrierWorkerPool batch-per-event with 4 RSS workers produces identical
// flow pinnings — pinning is a pure function of (forwarder seed, flow key).
TEST(ForwarderConcurrency, ThreadedSimulatorPathMatchesSingleThreaded) {
  // (a) classic single-threaded forwarder.
  Forwarder single{7, kFlows * 2};
  install_two_way_rule(single);
  {
    TrafficGenConfig config;
    config.flow_count = kFlows;
    PacketStream stream{config};
    for (std::uint32_t f = 0; f < kFlows; ++f) {
      Packet p = stream.next();
      p.arrival_source = 50;
      (void)single.process_from_wire(p);
    }
  }

  // (b) same forwarder id (same seed), 4 workers, driven the way the
  // simulator drives it: the event loop hands each worker its share of the
  // batch, and the pool barrier ends the event.
  constexpr std::size_t kWorkers = 4;
  Forwarder threaded{7, kFlows * 2, kWorkers};
  install_two_way_rule(threaded);

  std::vector<std::vector<Packet>> per_worker(kWorkers);
  {
    TrafficGenConfig config;
    config.flow_count = kFlows;
    PacketStream stream{config};
    for (std::uint32_t f = 0; f < kFlows; ++f) {
      Packet p = stream.next();
      p.arrival_source = 50;
      per_worker[threaded.worker_for(p)].push_back(p);
    }
  }

  sim::BarrierWorkerPool pool{kWorkers};
  // Split each worker's traffic into several event batches to exercise the
  // barrier repeatedly, as a simulation would.
  constexpr std::size_t kBatches = 8;
  for (std::size_t batch = 0; batch < kBatches; ++batch) {
    pool.run_batch([&](std::size_t w) {
      const std::vector<Packet>& mine = per_worker[w];
      const std::size_t begin = batch * mine.size() / kBatches;
      const std::size_t end = (batch + 1) * mine.size() / kBatches;
      const std::span<const Packet> slice{mine.data() + begin, end - begin};
      (void)threaded.process_batch(slice);
    });
  }

  const auto expected = pinnings_of(single);
  const auto actual = pinnings_of(threaded);
  ASSERT_EQ(expected.size(), kFlows);
  EXPECT_EQ(expected, actual);

  // Both instances also spread flows over the rule's two choices (the
  // pinning function is deterministic, not degenerate).
  std::size_t on_first = 0;
  for (const auto& [src, pin] : expected) {
    on_first += std::get<0>(pin) == 100 ? 1 : 0;
  }
  EXPECT_GT(on_first, 0u);
  EXPECT_LT(on_first, expected.size());
}

// Racing first packets: many threads fire the SAME flow's first packet at
// once; insert_if_absent guarantees one pinning wins everywhere.
TEST(ForwarderConcurrency, RacingFirstPacketsAgreeOnPinning) {
  Forwarder forwarder{3, 256, 4};
  install_two_way_rule(forwarder);
  TrafficGenConfig config;
  config.flow_count = 1;
  PacketStream stream{config};
  Packet p = stream.next();
  p.arrival_source = 50;

  constexpr std::size_t kThreads = 8;
  std::vector<ForwardAction> actions(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&forwarder, &actions, t, p] { actions[t] = forwarder.process_from_wire(p); });
  }
  for (auto& t : threads) t.join();
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(actions[t], actions[0]);
  }
  EXPECT_EQ(forwarder.flow_table().size(), 1u);
}

// migrate_flows (a control-plane whole-table op) between two quiesced
// threaded forwarders keeps every pinning intact.
TEST(ForwarderConcurrency, MigrateFlowsAcrossThreadedForwarders) {
  Forwarder source{1, kFlows * 2, 2};
  Forwarder target{2, kFlows * 2, 2};
  install_two_way_rule(source);
  install_two_way_rule(target);
  TrafficGenConfig config;
  config.flow_count = 512;
  PacketStream stream{config};
  for (std::uint32_t f = 0; f < 512; ++f) {
    Packet p = stream.next();
    p.arrival_source = 50;
    (void)source.process_from_wire(p);
  }
  const std::size_t before = source.flow_table().size();
  const std::size_t moved = source.migrate_flows(target, 100, 150);
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(source.flow_table().size() + moved, before);
  EXPECT_EQ(target.flow_table().size(), moved);
  std::size_t repinned = 0;
  target.flow_table().for_each(
      [&](const Labels&, const FiveTuple&, const FlowEntry& entry) {
        EXPECT_EQ(entry.vnf_instance, 150u);
        ++repinned;
      });
  EXPECT_EQ(repinned, moved);
  source.flow_table().check_invariants();
  target.flow_table().check_invariants();
}

}  // namespace
}  // namespace switchboard::dataplane
