// Unit tests for the TE engine layer (te/te_engine.hpp): Loads change
// epochs, the epoch-validated edge-cost cache, and TeEngine's incremental
// re-solve API.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "model/network_model.hpp"
#include "model/scenario.hpp"
#include "net/topology_gen.hpp"
#include "te/dp_routing.hpp"
#include "te/evaluator.hpp"
#include "te/loads.hpp"
#include "te/te_engine.hpp"

namespace switchboard::te {
namespace {

using model::Chain;
using model::NetworkModel;

/// Line A(0) - M(1) - B(2), 5 ms per hop; one VNF deployed at two sites.
struct LineFixture {
  NetworkModel m{net::make_line_topology(3, 10.0, 5.0)};
  SiteId site_a;
  SiteId site_m;
  SiteId site_b;
  VnfId fw;
  ChainId chain;

  LineFixture() {
    site_a = m.add_site(NodeId{0}, 1000.0, "A");
    site_m = m.add_site(NodeId{1}, 1000.0, "M");
    site_b = m.add_site(NodeId{2}, 1000.0, "B");
    fw = m.add_vnf("fw", 1.0);
    m.deploy_vnf(fw, site_m, 100.0);
    m.deploy_vnf(fw, site_b, 100.0);
    Chain c;
    c.ingress = NodeId{0};
    c.egress = NodeId{2};
    c.vnfs = {fw};
    c.forward_traffic = {2.0, 2.0};
    c.reverse_traffic = {0.0, 0.0};
    chain = m.add_chain(std::move(c));
  }

  [[nodiscard]] LinkId link_between(NodeId src, NodeId dst) const {
    for (const net::Link& link : m.topology().links()) {
      if (link.src == src && link.dst == dst) return link.id;
    }
    return LinkId{};
  }
};

model::ScenarioParams small_scenario(std::uint64_t seed) {
  model::ScenarioParams params;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;
  params.vnf_count = 6;
  params.chain_count = 15;
  params.coverage = 0.5;
  params.total_chain_traffic = 200.0;
  params.site_capacity = 300.0;
  params.seed = seed;
  return params;
}

// ------------------------------------------------------------ Loads epochs

TEST(LoadsEpochs, VersionAdvancesOnMutation) {
  LineFixture fx;
  Loads loads{fx.m};
  const std::uint64_t v0 = loads.version();
  EXPECT_GE(v0, 1u);   // version 0 must never exist (0 = empty stamp)
  loads.add_stage_flow(fx.m.chain(fx.chain), 1, NodeId{0}, NodeId{1}, 0.5);
  EXPECT_GT(loads.version(), v0);
  const std::uint64_t v1 = loads.version();
  loads.reset();
  EXPECT_GT(loads.version(), v1);
}

TEST(LoadsEpochs, OnlyTouchedResourcesAreStamped) {
  LineFixture fx;
  Loads loads{fx.m};
  const LinkId used = fx.link_between(NodeId{0}, NodeId{1});
  const LinkId untouched = fx.link_between(NodeId{1}, NodeId{2});
  ASSERT_TRUE(used.valid());
  ASSERT_TRUE(untouched.valid());

  const std::uint64_t before = loads.link_epoch(untouched);
  // Stage 1 A -> M: touches the 0->1 link and (fw, M), nothing else.
  loads.add_stage_flow(fx.m.chain(fx.chain), 1, NodeId{0}, NodeId{1}, 0.5);
  EXPECT_EQ(loads.link_epoch(used), loads.version());
  EXPECT_EQ(loads.link_epoch(untouched), before);
  EXPECT_EQ(loads.vnf_site_epoch(fx.fw, fx.site_m), loads.version());
  EXPECT_LT(loads.vnf_site_epoch(fx.fw, fx.site_b), loads.version());
}

TEST(LoadsEpochs, ResetStampsEverySlot) {
  LineFixture fx;
  Loads loads{fx.m};
  loads.add_stage_flow(fx.m.chain(fx.chain), 1, NodeId{0}, NodeId{1}, 0.5);
  loads.reset();
  for (const net::Link& link : fx.m.topology().links()) {
    EXPECT_EQ(loads.link_epoch(link.id), loads.version());
  }
  EXPECT_EQ(loads.vnf_site_epoch(fx.fw, fx.site_m), loads.version());
  EXPECT_EQ(loads.vnf_site_epoch(fx.fw, fx.site_b), loads.version());
}

// ---------------------------------------------------------- EdgeCostCache

/// Every (pair, vnf-site) combination the DP would query, compared against
/// the uncached reference.
void expect_cache_matches_reference(const NetworkModel& m, const Loads& loads,
                                    const DpOptions& options,
                                    EdgeCostCache& cache) {
  cache.bind(m, loads);
  const std::size_t n = m.topology().node_count();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      const NodeId n1{static_cast<NodeId::underlying_type>(a)};
      const NodeId n2{static_cast<NodeId::underlying_type>(b)};
      for (const model::Vnf& vnf : m.vnfs()) {
        for (const model::VnfDeployment& dep : vnf.deployments) {
          const double expected = stage_edge_cost(m, loads, options, n1, n2,
                                                  vnf.id, dep.site);
          const double actual = cache.edge_cost(m, loads, options, n1, n2,
                                                vnf.id, dep.site);
          ASSERT_EQ(expected, actual)
              << a << "->" << b << " vnf " << vnf.id.value() << " site "
              << dep.site.value();
        }
      }
      const double expected =
          stage_edge_cost(m, loads, options, n1, n2, VnfId{}, SiteId{});
      ASSERT_EQ(expected, cache.edge_cost(m, loads, options, n1, n2, VnfId{},
                                          SiteId{}));
    }
  }
}

TEST(EdgeCostCache, MatchesReferenceAcrossLoadMutations) {
  const NetworkModel m = model::make_scenario(small_scenario(3));
  Loads loads{m};
  const DpOptions options;
  EdgeCostCache cache;

  expect_cache_matches_reference(m, loads, options, cache);
  // Mutate loads chain by chain; stale entries must re-validate via epochs.
  for (const model::Chain& chain : m.chains()) {
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      const NodeId src = z == 1 ? chain.ingress : chain.egress;
      loads.add_stage_flow(chain, z, src, chain.egress, 0.25);
    }
    expect_cache_matches_reference(m, loads, options, cache);
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

TEST(EdgeCostCache, ResetInvalidatesThroughEpochs) {
  const NetworkModel m = model::make_scenario(small_scenario(5));
  Loads loads{m};
  const DpOptions options;
  EdgeCostCache cache;
  expect_cache_matches_reference(m, loads, options, cache);
  const model::Chain& chain = m.chains().front();
  loads.add_stage_flow(chain, 1, chain.ingress, chain.egress, 1.0);
  loads.reset();   // values cached before the reset are all stale now
  expect_cache_matches_reference(m, loads, options, cache);
}

TEST(EdgeCostCache, InvalidatePicksUpModelMutation) {
  // Background traffic lives in the model, invisible to Loads epochs: the
  // caller must invalidate, after which values match the reference again.
  NetworkModel m = model::make_scenario(small_scenario(8));
  Loads loads{m};
  const DpOptions options;
  EdgeCostCache cache;
  expect_cache_matches_reference(m, loads, options, cache);

  m.set_background_traffic(LinkId{0}, m.background_traffic(LinkId{0}) + 50.0);
  cache.invalidate();
  expect_cache_matches_reference(m, loads, options, cache);
}

// --------------------------------------------------------------- TeEngine

TEST(TeEngine, RemoveChainRestoresLoads) {
  const NetworkModel m = model::make_scenario(small_scenario(13));
  TeEngine engine{m};
  engine.solve();

  const ChainId victim = m.chains().front().id;
  ASSERT_TRUE(engine.tracks_chain(victim));
  engine.remove_chain(victim);
  EXPECT_FALSE(engine.tracks_chain(victim));
  engine.check_invariants();

  // The surviving loads must equal the loads of the remaining routing —
  // check_invariants already asserts that; additionally the removed
  // chain's flows are gone.
  for (std::size_t z = 1; z <= m.chains().front().stage_count(); ++z) {
    EXPECT_TRUE(engine.result().routing.flows(victim, z).empty());
  }

  const double readded = engine.add_chain(victim);
  EXPECT_GE(readded, 0.0);
  EXPECT_TRUE(engine.tracks_chain(victim));
  engine.check_invariants();
}

TEST(TeEngine, RerouteChainKeepsSolutionFeasible) {
  const NetworkModel m = model::make_scenario(small_scenario(21));
  TeEngine engine{m};
  engine.solve();
  for (const model::Chain& chain : m.chains()) {
    engine.reroute_chain(chain.id);
  }
  engine.check_invariants();
  engine.loads().check_no_capacity_violation(1e-6);
}

TEST(TeEngine, LinkCapacityChangeReroutesAffectedChains) {
  NetworkModel m = model::make_scenario(small_scenario(2));
  TeEngine engine{m};
  engine.solve();
  const double before = engine.result().routed_volume;

  // Soak up most of one well-used link's headroom; every chain crossing
  // it must be re-routed against the new residual capacity.
  LinkId busiest{};
  double busiest_load = -1.0;
  for (const net::Link& link : m.topology().links()) {
    if (engine.loads().link_load(link.id) > busiest_load) {
      busiest_load = engine.loads().link_load(link.id);
      busiest = link.id;
    }
  }
  ASSERT_TRUE(busiest.valid());
  ASSERT_GT(busiest_load, 0.0);

  const net::Link& link = m.topology().link(busiest);
  m.set_background_traffic(busiest,
                           m.background_traffic(busiest) + 0.9 * link.capacity);
  const std::size_t rerouted = engine.on_link_capacity_changed(busiest);
  EXPECT_GT(rerouted, 0u);
  engine.check_invariants();
  engine.loads().check_no_capacity_violation(1e-6);
  // Shrinking capacity cannot increase what the engine carries.
  EXPECT_LE(engine.result().routed_volume, before + 1e-9);
}

TEST(TeEngine, VnfCapacityChangeReroutesAffectedChains) {
  NetworkModel m = model::make_scenario(small_scenario(34));
  TeEngine engine{m};
  engine.solve();

  // Find a (vnf, site) pair that actually carries load, then halve it.
  VnfId vnf{};
  SiteId site{};
  for (const model::Vnf& v : m.vnfs()) {
    for (const model::VnfDeployment& dep : v.deployments) {
      if (engine.loads().vnf_site_load(v.id, dep.site) > 0.0) {
        vnf = v.id;
        site = dep.site;
        break;
      }
    }
    if (vnf.valid()) break;
  }
  ASSERT_TRUE(vnf.valid());

  m.set_vnf_site_capacity(vnf, site, 0.5 * m.vnf(vnf).capacity_at(site));
  const std::size_t rerouted = engine.on_vnf_site_capacity_changed(vnf, site);
  EXPECT_GT(rerouted, 0u);
  engine.check_invariants();
  engine.loads().check_no_capacity_violation(1e-6);
}

TEST(TeEngine, SecondSolveMatchesFirst) {
  const NetworkModel m = model::make_scenario(small_scenario(42));
  TeEngine engine{m};
  const double first = engine.solve().routed_volume;
  // A warm cache must not change the answer.
  const double second = engine.solve().routed_volume;
  EXPECT_EQ(first, second);
  EXPECT_GT(engine.cost_cache().hits(), 0u);
}

}  // namespace
}  // namespace switchboard::te
