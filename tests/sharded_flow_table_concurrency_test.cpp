// Multi-threaded stress tests for ShardedFlowTable, built to run under the
// tsan preset (CI runs every *_concurrency_test binary with
// TSAN_OPTIONS=halt_on_error=1).  Writers and readers use OVERLAPPING key
// sets so find/insert/erase genuinely race on the same shards; audits run
// concurrently to prove the all-shards-in-index-order lock discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "dataplane/sharded_flow_table.hpp"

namespace switchboard::dataplane {
namespace {

FiveTuple make_tuple(std::uint32_t i) {
  return FiveTuple{0x0A000000u + i, 0xC0A80001u,
                   static_cast<std::uint16_t>(1000 + (i % 60000)), 80, 6};
}

// N writers insert/erase over overlapping key ranges while M readers spin
// find() over the union.  Afterwards the table must satisfy every
// structural invariant and the per-shard counters must agree with the
// surviving entries.
TEST(ShardedFlowTableConcurrency, WritersAndReadersOverlappingKeys) {
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kReaders = 3;
  constexpr std::uint32_t kKeysPerWriter = 2000;
  constexpr std::uint32_t kOverlap = 500;   // shared tail between neighbors

  ShardedFlowTable table{1024, 16};
  const Labels labels{1, 1};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reader_hits{0};

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t hits = 0;
      std::uint32_t i = static_cast<std::uint32_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint32_t key = i++ % (kWriters * kKeysPerWriter);
        if (const auto entry = table.find(labels, make_tuple(key))) {
          // Entries are only ever written with value == key: a torn or
          // half-constructed entry would fail this.
          EXPECT_EQ(entry->vnf_instance, key);
          ++hits;
        }
      }
      reader_hits.fetch_add(hits, std::memory_order_relaxed);
    });
  }

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Writer w owns [base, base + kKeysPerWriter) and also churns the
      // first kOverlap keys of the NEXT writer's range (the overlap).
      const std::uint32_t base =
          static_cast<std::uint32_t>(w) * kKeysPerWriter;
      const std::uint32_t next_base =
          static_cast<std::uint32_t>((w + 1) % kWriters) * kKeysPerWriter;
      for (int round = 0; round < 10; ++round) {
        for (std::uint32_t i = 0; i < kKeysPerWriter; ++i) {
          const std::uint32_t key = base + i;
          table.insert(labels, make_tuple(key), FlowEntry{key, key, key});
        }
        for (std::uint32_t i = 0; i < kOverlap; ++i) {
          const std::uint32_t key = next_base + i;
          table.insert_if_absent(labels, make_tuple(key),
                                 FlowEntry{key, key, key});
        }
        // Erase the odd half of the owned range; the final round leaves
        // only even keys of each owned range live (overlap keys may or
        // may not survive, depending on interleaving — both are valid).
        for (std::uint32_t i = 1; i < kKeysPerWriter; i += 2) {
          (void)table.erase(labels, make_tuple(base + i));
        }
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  // Counter snapshot BEFORE the survivor checks below add finds of their
  // own.  Readers are the only find() callers so far, so hits must equal
  // what the readers tallied; live size can never exceed inserts minus
  // successful erases (audited per shard inside check_invariants(),
  // asserted on the aggregate here).
  const ShardedFlowTable::Stats stats = table.stats();
  EXPECT_GE(stats.inserts, kWriters * kKeysPerWriter);
  EXPECT_EQ(stats.hits, reader_hits.load());
  EXPECT_GE(stats.finds, stats.hits);
  EXPECT_LE(table.size() + stats.erases, stats.inserts);

  // Deterministic survivors: every even key of every owned range (erases
  // only target odd keys; the last full insert round rewrote all of them).
  for (std::uint32_t w = 0; w < kWriters; ++w) {
    for (std::uint32_t i = 0; i < kKeysPerWriter; i += 2) {
      const std::uint32_t key = w * kKeysPerWriter + i;
      const auto entry = table.find(labels, make_tuple(key));
      ASSERT_TRUE(entry.has_value()) << key;
      EXPECT_EQ(entry->vnf_instance, key);
    }
  }
  table.check_invariants();
}

// Whole-table audits (all shard locks in index order) run concurrently
// with workers hammering single-shard operations — no deadlock, no race.
TEST(ShardedFlowTableConcurrency, AuditsRunConcurrentlyWithWorkers) {
  ShardedFlowTable table{512, 8};
  const Labels labels{2, 2};
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      std::uint32_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint32_t key =
            static_cast<std::uint32_t>(w) * 100000 + (i % 3000);
        table.insert(labels, make_tuple(key), FlowEntry{key, key, key});
        if (i % 3 == 0) (void)table.erase(labels, make_tuple(key));
        ++i;
      }
    });
  }

  for (int audit = 0; audit < 50; ++audit) {
    table.check_invariants();
    (void)table.size();
    (void)table.stats();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.join();
  table.check_invariants();
}

// clear() + for_each() vs writers: whole-table ops serialize against
// single-shard ops without losing structural consistency.
TEST(ShardedFlowTableConcurrency, ClearAndIterateUnderWrites) {
  ShardedFlowTable table{256, 8};
  const Labels labels{3, 3};
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      std::uint32_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint32_t key =
            static_cast<std::uint32_t>(w) * 50000 + (i++ % 2000);
        table.insert(labels, make_tuple(key), FlowEntry{key, key, key});
      }
    });
  }

  for (int round = 0; round < 30; ++round) {
    std::size_t visited = 0;
    table.for_each([&](const Labels&, const FiveTuple&, const FlowEntry& entry) {
      // Value integrity under the all-shards lock.
      EXPECT_EQ(entry.vnf_instance, entry.next_forwarder);
      ++visited;
    });
    if (round % 10 == 9) table.clear();
    (void)visited;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  table.check_invariants();
}

}  // namespace
}  // namespace switchboard::dataplane
