// Randomized differential tests ("fuzz"): drive data-plane and simulator
// components with random operation sequences and compare against simple
// reference models.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "dataplane/dht_flow_table.hpp"
#include "dataplane/flow_table.hpp"
#include "dataplane/forwarder.hpp"
#include "sim/simulator.hpp"

namespace switchboard {
namespace {

using namespace dataplane;

FiveTuple tuple_for(std::uint32_t i) {
  return FiveTuple{0x0A000000u + (i % 97), 0xC0A80000u + (i % 89),
                   static_cast<std::uint16_t>(1000 + i % 83),
                   static_cast<std::uint16_t>(2000 + i % 79),
                   static_cast<std::uint8_t>(i % 2 ? 6 : 17)};
}

// ----------------------------------------------------- FlowTable vs std::map

struct KeyLess {
  bool operator()(const std::pair<Labels, FiveTuple>& a,
                  const std::pair<Labels, FiveTuple>& b) const {
    const auto pack = [](const std::pair<Labels, FiveTuple>& k) {
      return std::make_tuple(k.first.chain, k.first.egress_site,
                             k.second.src_ip, k.second.dst_ip,
                             k.second.src_port, k.second.dst_port,
                             k.second.protocol);
    };
    return pack(a) < pack(b);
  }
};

class FlowTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableFuzz,
                         ::testing::Values(1, 7, 42, 1337));

TEST_P(FlowTableFuzz, MatchesReferenceMap) {
  Rng rng{GetParam()};
  FlowTable table{16};   // small: forces growth + tombstone churn
  std::map<std::pair<Labels, FiveTuple>, FlowEntry, KeyLess> reference;

  for (int op = 0; op < 20000; ++op) {
    const auto i = static_cast<std::uint32_t>(rng.uniform_int(0, 400));
    const Labels labels{static_cast<std::uint32_t>(rng.uniform_int(1, 3)), 1};
    const FiveTuple t = tuple_for(i);
    const auto key = std::make_pair(labels, t);
    const double dice = rng.uniform();
    if (dice < 0.5) {
      const FlowEntry entry{i, i + 1, i + 2};
      table.insert(labels, t, entry);
      reference[key] = entry;
    } else if (dice < 0.8) {
      const FlowEntry* found = table.find(labels, t);
      const auto ref = reference.find(key);
      if (ref == reference.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(found->vnf_instance, ref->second.vnf_instance);
        EXPECT_EQ(found->next_forwarder, ref->second.next_forwarder);
        EXPECT_EQ(found->prev_element, ref->second.prev_element);
      }
    } else {
      const bool erased = table.erase(labels, t);
      EXPECT_EQ(erased, reference.erase(key) > 0);
    }
    ASSERT_EQ(table.size(), reference.size());
  }
}

TEST_P(FlowTableFuzz, DhtMatchesReferenceUnderChurnAndFailures) {
  Rng rng{GetParam() + 50};
  DhtFlowTable dht{4};
  std::map<std::pair<Labels, FiveTuple>, FlowEntry, KeyLess> reference;

  for (int op = 0; op < 5000; ++op) {
    const auto i = static_cast<std::uint32_t>(rng.uniform_int(0, 300));
    const Labels labels{1, 1};
    const FiveTuple t = tuple_for(i);
    const auto key = std::make_pair(labels, t);
    const double dice = rng.uniform();
    if (dice < 0.45) {
      const FlowEntry entry{i, i, i};
      dht.insert(labels, t, entry);
      reference[key] = entry;
    } else if (dice < 0.75) {
      const auto found = dht.find(labels, t);
      const auto ref = reference.find(key);
      if (ref == reference.end()) {
        EXPECT_FALSE(found.has_value());
      } else {
        ASSERT_TRUE(found.has_value());
        EXPECT_EQ(found->vnf_instance, ref->second.vnf_instance);
      }
    } else if (dice < 0.9) {
      EXPECT_EQ(dht.erase(labels, t), reference.erase(key) > 0);
    } else if (dht.live_node_count() > 2) {
      // Fail a random live node; with RF=2 and one failure at a time,
      // nothing may be lost.
      std::size_t node = 0;
      do {
        node = static_cast<std::size_t>(rng.uniform_int(0, 3));
      } while (!dht.node_alive(node));
      dht.fail_node(node);
    } else {
      for (std::size_t n = 0; n < dht.node_count(); ++n) {
        if (!dht.node_alive(n)) dht.recover_node(n);
      }
    }
  }
  // Final sweep: every reference entry must be resolvable.
  for (const auto& [key, entry] : reference) {
    const auto found = dht.find(key.first, key.second);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->vnf_instance, entry.vnf_instance);
  }
}

// ------------------------------------------------ Forwarder affinity fuzz

class ForwarderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ForwarderFuzz, ::testing::Values(3, 9, 27));

TEST_P(ForwarderFuzz, AffinityInvariantUnderRuleChurn) {
  // Random interleaving of packets and rule updates: once a flow is
  // pinned, its delivery target never changes (until completed), no
  // matter how rules churn.
  Rng rng{GetParam()};
  Forwarder fw{1};
  const Labels labels{9, 9};

  auto install_random_rule = [&] {
    LoadBalanceRule rule;
    const int instances = static_cast<int>(rng.uniform_int(1, 4));
    for (int k = 0; k < instances; ++k) {
      rule.vnf_instances.add(100 + static_cast<ElementId>(rng.uniform_int(0, 9)),
                             rng.uniform(0.5, 2.0));
    }
    rule.next_forwarders.add(200, 1.0);
    fw.rules().install(labels, std::move(rule));
  };
  install_random_rule();

  std::unordered_map<std::uint32_t, ElementId> pinned;
  for (int op = 0; op < 20000; ++op) {
    const double dice = rng.uniform();
    const auto flow = static_cast<std::uint32_t>(rng.uniform_int(0, 200));
    if (dice < 0.75) {
      Packet p;
      p.flow = tuple_for(flow);
      p.labels = labels;
      p.arrival_source = 50;
      const ForwardAction action = fw.process_from_wire(p);
      ASSERT_EQ(action.type, ActionType::kDeliverToAttached);
      const auto it = pinned.find(flow);
      if (it != pinned.end()) {
        EXPECT_EQ(action.element, it->second) << "flow " << flow
                                              << " repinned at op " << op;
      } else {
        pinned[flow] = action.element;
      }
    } else if (dice < 0.9) {
      install_random_rule();   // affinity must survive this
    } else {
      fw.complete_flow(labels, tuple_for(flow));
      pinned.erase(flow);
    }
  }
}

// ----------------------------------------------------------- Simulator fuzz

class SimulatorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzz, ::testing::Values(5, 55, 555));

TEST_P(SimulatorFuzz, RandomScheduleCancelKeepsOrderAndCounts) {
  Rng rng{GetParam()};
  sim::Simulator sim;
  int fired = 0;
  int expected = 0;
  sim::SimTime last = -1;
  bool monotone = true;

  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 5000; ++i) {
    const auto delay = rng.uniform_int(0, 10000);
    handles.push_back(sim.schedule(delay, [&] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
      ++fired;
    }));
    ++expected;
  }
  // Cancel a random third.
  int cancelled = 0;
  for (const sim::EventHandle h : handles) {
    if (rng.bernoulli(0.33) && sim.cancel(h)) ++cancelled;
  }
  expected -= cancelled;
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace switchboard
