#include <gtest/gtest.h>

#include <set>

#include "control/messages.hpp"
#include "core/middleware.hpp"
#include "model/network_model.hpp"
#include "net/topology_gen.hpp"

namespace switchboard::control {
namespace {

using core::Deployment;
using core::Middleware;

// ---------------------------------------------------------------- Messages

TEST(Messages, InstanceRoundTrip) {
  InstanceAnnouncement m;
  m.instance = 42;
  m.forwarder = 7;
  m.weight = 2.5;
  const auto parsed = parse_instance(serialize(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->instance, 42u);
  EXPECT_EQ(parsed->forwarder, 7u);
  EXPECT_DOUBLE_EQ(parsed->weight, 2.5);
}

TEST(Messages, ForwarderRoundTrip) {
  ForwarderAnnouncement m;
  m.forwarder = 9;
  m.weight = 0.75;
  const auto parsed = parse_forwarder(serialize(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->forwarder, 9u);
  EXPECT_DOUBLE_EQ(parsed->weight, 0.75);
}

TEST(Messages, RouteRoundTrip) {
  RouteAnnouncement m;
  m.chain = ChainId{3};
  m.route = RouteId{11};
  m.chain_label = 1003;
  m.egress_label = 2;
  m.ingress_site = SiteId{0};
  m.egress_site = SiteId{2};
  m.weight = 0.5;
  m.hops = {RouteHop{1, VnfId{4}, SiteId{1}}, RouteHop{2, VnfId{6}, SiteId{2}}};
  const auto parsed = parse_route(serialize(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->chain, ChainId{3});
  EXPECT_EQ(parsed->route, RouteId{11});
  EXPECT_EQ(parsed->chain_label, 1003u);
  EXPECT_EQ(parsed->egress_label, 2u);
  ASSERT_EQ(parsed->hops.size(), 2u);
  EXPECT_EQ(parsed->hops[0].vnf, VnfId{4});
  EXPECT_EQ(parsed->hops[1].site, SiteId{2});
  EXPECT_DOUBLE_EQ(parsed->weight, 0.5);
}

TEST(Messages, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_instance("not a message").has_value());
  EXPECT_FALSE(parse_route("type=route;chain=x").has_value());
  EXPECT_FALSE(parse_forwarder("").has_value());
}

// --------------------------------------------------------- Deployment setup

/// Line topology A(0) - M(1) - B(2); sites at all three nodes; one
/// firewall VNF deployed at M and B.
struct Fixture {
  model::NetworkModel make_model(double cap_m = 100.0, double cap_b = 100.0) {
    model::NetworkModel m{net::make_line_topology(3, 50.0, 5.0)};
    site_a = m.add_site(NodeId{0}, 1000.0, "A");
    site_m = m.add_site(NodeId{1}, 1000.0, "M");
    site_b = m.add_site(NodeId{2}, 1000.0, "B");
    fw = m.add_vnf("firewall", 1.0);
    m.deploy_vnf(fw, site_m, cap_m);
    m.deploy_vnf(fw, site_b, cap_b);
    return m;
  }

  ChainSpec make_spec(EdgeServiceId edge, double traffic = 1.0) const {
    ChainSpec spec;
    spec.name = "test-chain";
    spec.ingress_service = edge;
    spec.ingress_node = NodeId{0};
    spec.egress_service = edge;
    spec.egress_node = NodeId{2};
    spec.vnfs = {fw};
    spec.forward_traffic = traffic;
    spec.reverse_traffic = traffic * 0.25;
    return spec;
  }

  SiteId site_a, site_m, site_b;
  VnfId fw;
};

dataplane::FiveTuple tuple(std::uint32_t i) {
  return dataplane::FiveTuple{0x0A000000u + i, 0xC0A80001u,
                              static_cast<std::uint16_t>(5000 + i), 80, 6};
}

// ---------------------------------------------------------- Chain creation

TEST(ChainCreation, CompletesAndReportsEvents) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto result = mw.create_chain(fx.make_spec(edge));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const auto& report = result.value();
  EXPECT_GT(report.completed, report.started);
  // Events appear in causal order.
  std::vector<std::string> names;
  for (const auto& event : report.events) names.push_back(event.name);
  const auto find = [&](const std::string& name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  EXPECT_LT(find("spec_received"), find("sites_resolved"));
  EXPECT_LT(find("sites_resolved"), find("route_computed"));
  EXPECT_LT(find("route_computed"), find("prepared"));
  EXPECT_LT(find("prepared"), find("committed"));
  EXPECT_LT(find("committed"), find("routes_published"));
  EXPECT_GE(find("activated"), 0);
  // The whole workflow stays within a second of simulated time (the
  // paper's route update takes 595 ms on a real testbed).
  EXPECT_LT(report.elapsed(), sim::seconds(1));
}

TEST(ChainCreation, RouteUsesDeployedSites) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto result = mw.create_chain(fx.make_spec(edge));
  ASSERT_TRUE(result.ok());
  const ChainRecord& record = mw.chain_record(result->chain);
  ASSERT_EQ(record.routes.size(), 1u);
  ASSERT_EQ(record.routes[0].vnf_sites.size(), 1u);
  const SiteId chosen = record.routes[0].vnf_sites[0];
  EXPECT_TRUE(chosen == fx.site_m || chosen == fx.site_b);
  EXPECT_EQ(record.ingress_site, fx.site_a);
  EXPECT_EQ(record.egress_site, fx.site_b);
}

TEST(ChainCreation, FailsWithoutEdgeService) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  ChainSpec spec = fx.make_spec(EdgeServiceId{99});
  const auto result = mw.create_chain(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnavailable);
}

TEST(ChainCreation, InfeasibleWhenNoCapacity) {
  Fixture fx;
  Middleware mw{fx.make_model(/*cap_m=*/0.1, /*cap_b=*/0.1)};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto result = mw.create_chain(fx.make_spec(edge, /*traffic=*/10.0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInfeasible);
}

// ----------------------------------------------------------- Data plane E2E

TEST(DataPlaneE2E, ForwardDeliveryThroughVnf) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto result = mw.create_chain(fx.make_spec(edge));
  ASSERT_TRUE(result.ok());

  const auto walk = mw.send(result->chain, tuple(1));
  ASSERT_TRUE(walk.delivered) << walk.failure;
  // Conformity: exactly one VNF instance on the path.
  EXPECT_EQ(walk.vnf_instances().size(), 1u);
  EXPECT_GT(walk.latency_ms, 0.0);
  EXPECT_LE(walk.latency_ms, 25.0);   // 2 hops x 5ms + detour margin
}

TEST(DataPlaneE2E, FlowAffinityAcrossPackets) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto result = mw.create_chain(fx.make_spec(edge));
  ASSERT_TRUE(result.ok());

  const auto first = mw.send(result->chain, tuple(1));
  ASSERT_TRUE(first.delivered);
  for (int i = 0; i < 10; ++i) {
    const auto again = mw.send(result->chain, tuple(1));
    ASSERT_TRUE(again.delivered);
    EXPECT_EQ(again.vnf_instances(), first.vnf_instances());
  }
}

TEST(DataPlaneE2E, SymmetricReturn) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto result = mw.create_chain(fx.make_spec(edge));
  ASSERT_TRUE(result.ok());

  const auto forward = mw.send(result->chain, tuple(2));
  ASSERT_TRUE(forward.delivered) << forward.failure;
  const auto reverse = mw.send(result->chain, tuple(2),
                               dataplane::Direction::kReverse);
  ASSERT_TRUE(reverse.delivered) << reverse.failure;
  // Same VNF instances, reverse order.
  auto expected = forward.vnf_instances();
  std::reverse(expected.begin(), expected.end());
  EXPECT_EQ(reverse.vnf_instances(), expected);
}

TEST(DataPlaneE2E, ReverseBeforeForwardFails) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto result = mw.create_chain(fx.make_spec(edge));
  ASSERT_TRUE(result.ok());
  // No forward packet has established flow state: reverse traffic for an
  // unknown flow is dropped.
  const auto reverse = mw.send(result->chain, tuple(3),
                               dataplane::Direction::kReverse);
  EXPECT_FALSE(reverse.delivered);
}

TEST(DataPlaneE2E, MultiVnfChainTraversesInOrder) {
  model::NetworkModel m{net::make_line_topology(4, 50.0, 5.0)};
  const SiteId s0 = m.add_site(NodeId{0}, 1000.0);
  const SiteId s1 = m.add_site(NodeId{1}, 1000.0);
  const SiteId s2 = m.add_site(NodeId{2}, 1000.0);
  m.add_site(NodeId{3}, 1000.0);
  (void)s0;
  const VnfId fw = m.add_vnf("firewall", 1.0);
  const VnfId nat = m.add_vnf("nat", 1.0);
  m.deploy_vnf(fw, s1, 100.0);
  m.deploy_vnf(nat, s2, 100.0);

  Middleware mw{std::move(m)};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  ChainSpec spec;
  spec.name = "fw-nat";
  spec.ingress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_service = edge;
  spec.egress_node = NodeId{3};
  spec.vnfs = {fw, nat};
  const auto result = mw.create_chain(spec);
  ASSERT_TRUE(result.ok()) << result.error().to_string();

  const auto walk = mw.send(result->chain, tuple(1));
  ASSERT_TRUE(walk.delivered) << walk.failure;
  const auto instances = walk.vnf_instances();
  ASSERT_EQ(instances.size(), 2u);
  // Conformity: firewall before NAT.
  auto& elements = mw.deployment().elements();
  EXPECT_EQ(elements.info(instances[0]).vnf, fw);
  EXPECT_EQ(elements.info(instances[1]).vnf, nat);
  EXPECT_EQ(elements.info(instances[0]).site, s1);
  EXPECT_EQ(elements.info(instances[1]).site, s2);
}

// --------------------------------------------------------------- Add route

TEST(AddRoute, SecondRouteSpreadsNewFlows) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto created = mw.create_chain(fx.make_spec(edge));
  ASSERT_TRUE(created.ok());
  const ChainId chain = created->chain;
  const SiteId first_site = mw.chain_record(chain).routes[0].vnf_sites[0];

  // Force the second route through the other site (the Fig. 10 scenario).
  const SiteId other = first_site == fx.site_m ? fx.site_b : fx.site_m;
  const auto added = mw.add_route(chain, {other});
  ASSERT_TRUE(added.ok()) << added.error().to_string();
  EXPECT_LT(added->elapsed(), sim::seconds(1));

  const ChainRecord& record = mw.chain_record(chain);
  ASSERT_EQ(record.routes.size(), 2u);
  EXPECT_DOUBLE_EQ(record.routes[0].weight, 0.5);
  EXPECT_DOUBLE_EQ(record.routes[1].weight, 0.5);

  // New flows spread across both sites.
  std::set<SiteId> used;
  auto& elements = mw.deployment().elements();
  for (std::uint32_t f = 0; f < 64; ++f) {
    const auto walk = mw.send(chain, tuple(100 + f));
    ASSERT_TRUE(walk.delivered) << walk.failure;
    for (const auto instance : walk.vnf_instances()) {
      used.insert(elements.info(instance).site);
    }
  }
  EXPECT_EQ(used.size(), 2u) << "both routes should carry new flows";
}

TEST(AddRoute, ExistingFlowKeepsItsPath) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto created = mw.create_chain(fx.make_spec(edge));
  ASSERT_TRUE(created.ok());
  const ChainId chain = created->chain;

  const auto before = mw.send(chain, tuple(7));
  ASSERT_TRUE(before.delivered);

  const SiteId first_site = mw.chain_record(chain).routes[0].vnf_sites[0];
  const SiteId other = first_site == fx.site_m ? fx.site_b : fx.site_m;
  ASSERT_TRUE(mw.add_route(chain, {other}).ok());

  // Make-before-break: the pinned flow still takes the original path.
  const auto after = mw.send(chain, tuple(7));
  ASSERT_TRUE(after.delivered);
  EXPECT_EQ(after.vnf_instances(), before.vnf_instances());
}

TEST(AddRoute, UnknownChainFails) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  mw.register_edge_service("vpn");
  const auto result = mw.add_route(ChainId{42}, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kNotFound);
}

// ------------------------------------------------------------- 2PC conflict

TEST(TwoPhaseCommit, RejectionTriggersRecompute) {
  // The VNF controller at M holds capacity that Global Switchboard's model
  // view does not know about; 2PC must reject and the retry must land on B.
  Fixture fx;
  Middleware mw{fx.make_model(/*cap_m=*/3.0, /*cap_b=*/100.0)};
  const EdgeServiceId edge = mw.register_edge_service("vpn");

  // Out-of-band reservation eats M's capacity at the controller.
  auto& controller = mw.deployment().vnf_controller(fx.fw);
  ASSERT_TRUE(controller.prepare(ChainId{900}, RouteId{900}, fx.site_m, 2.9));

  const auto result = mw.create_chain(fx.make_spec(edge, /*traffic=*/1.0));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const ChainRecord& record = mw.chain_record(result->chain);
  ASSERT_EQ(record.routes.size(), 1u);
  EXPECT_EQ(record.routes[0].vnf_sites[0], fx.site_b);

  // The report shows the rejected attempt.
  bool saw_rejection = false;
  for (const auto& event : result->events) {
    if (event.name == "route_rejected") saw_rejection = true;
  }
  EXPECT_TRUE(saw_rejection);
}

TEST(TwoPhaseCommit, AbortReleasesReservations) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  auto& controller = mw.deployment().vnf_controller(fx.fw);
  ASSERT_TRUE(controller.prepare(ChainId{1}, RouteId{1}, fx.site_m, 50.0));
  EXPECT_DOUBLE_EQ(controller.allocated(fx.site_m), 50.0);
  controller.abort(ChainId{1}, RouteId{1});
  EXPECT_DOUBLE_EQ(controller.allocated(fx.site_m), 0.0);
}

TEST(TwoPhaseCommit, PrepareEnforcesCapacity) {
  Fixture fx;
  Middleware mw{fx.make_model(/*cap_m=*/10.0)};
  auto& controller = mw.deployment().vnf_controller(fx.fw);
  EXPECT_TRUE(controller.prepare(ChainId{1}, RouteId{1}, fx.site_m, 6.0));
  EXPECT_FALSE(controller.prepare(ChainId{2}, RouteId{2}, fx.site_m, 6.0));
  EXPECT_TRUE(controller.prepare(ChainId{2}, RouteId{3}, fx.site_m, 4.0));
  EXPECT_DOUBLE_EQ(controller.headroom(fx.site_m), 0.0);
}

// ------------------------------------------------------------ Edge addition

TEST(EdgeAddition, TraceIsOrderedAndFast) {
  // 4-node line: chain from node0 to node3, VNF at node1; then a user
  // appears at node2 (a new edge site).
  model::NetworkModel m{net::make_line_topology(4, 50.0, 5.0)};
  m.add_site(NodeId{0}, 1000.0);
  const SiteId s1 = m.add_site(NodeId{1}, 1000.0);
  const SiteId s2 = m.add_site(NodeId{2}, 1000.0);
  m.add_site(NodeId{3}, 1000.0);
  const VnfId fw = m.add_vnf("firewall", 1.0);
  m.deploy_vnf(fw, s1, 100.0);

  Middleware mw{std::move(m)};
  const EdgeServiceId edge = mw.register_edge_service("cellular");
  ChainSpec spec;
  spec.name = "mobile";
  spec.ingress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_service = edge;
  spec.egress_node = NodeId{3};
  spec.vnfs = {fw};
  const auto created = mw.create_chain(spec);
  ASSERT_TRUE(created.ok()) << created.error().to_string();

  const auto result = mw.attach_edge(created->chain, s2, edge);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const auto& trace = result.value();
  // Step 1 is immediate (Table 2 row 1: 0 ms).
  EXPECT_EQ(trace.site_chosen, trace.started);
  // Remaining steps are ordered.
  EXPECT_GT(trace.forwarder_info_received, trace.site_chosen);
  EXPECT_GT(trace.edge_configured, trace.forwarder_info_received);
  EXPECT_GT(trace.remote_received, trace.edge_configured);
  EXPECT_GT(trace.remote_config_started, trace.remote_received);
  EXPECT_GT(trace.remote_config_finished, trace.remote_config_started);
  // Total comfortably under a second (paper: < 600 ms).
  EXPECT_LT(trace.remote_config_finished - trace.started, sim::seconds(1));
}

// ------------------------------------------------------------- Scale-out

TEST(VnfScaleOut, NewFlowsSpreadAcrossInstancePool) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto created = mw.create_chain(fx.make_spec(edge));
  ASSERT_TRUE(created.ok());
  const SiteId vnf_site = mw.chain_record(created->chain).routes[0].vnf_sites[0];

  // Horizontal scaling: grow the pool at the chain's site to 3 instances.
  auto& controller = mw.deployment().vnf_controller(fx.fw);
  const auto added = controller.scale_instances(vnf_site, 3);
  EXPECT_EQ(added.size(), 2u);
  mw.deployment().simulator().run();   // let announcements propagate

  auto& elements = mw.deployment().elements();
  std::set<dataplane::ElementId> used;
  for (std::uint32_t f = 0; f < 90; ++f) {
    const auto walk = mw.send(created->chain, tuple(500 + f));
    ASSERT_TRUE(walk.delivered) << walk.failure;
    for (const auto instance : walk.vnf_instances()) used.insert(instance);
  }
  EXPECT_EQ(used.size(), 3u) << "flows should spread across the pool";
  // All pool members attach to ONE forwarder (hierarchical LB, Fig. 5).
  std::set<dataplane::ElementId> forwarders;
  for (const auto instance : used) {
    forwarders.insert(elements.info(instance).attached_forwarder);
  }
  EXPECT_EQ(forwarders.size(), 1u);
}

TEST(VnfScaleOut, ExistingFlowsKeepTheirInstance) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto created = mw.create_chain(fx.make_spec(edge));
  ASSERT_TRUE(created.ok());
  const auto before = mw.send(created->chain, tuple(1));
  ASSERT_TRUE(before.delivered);

  const SiteId vnf_site = mw.chain_record(created->chain).routes[0].vnf_sites[0];
  mw.deployment().vnf_controller(fx.fw).scale_instances(vnf_site, 4);
  mw.deployment().simulator().run();

  const auto after = mw.send(created->chain, tuple(1));
  ASSERT_TRUE(after.delivered);
  EXPECT_EQ(after.vnf_instances(), before.vnf_instances());
}

TEST(EdgeAddition, TrafficFlowsFromNewEdgeSite) {
  // After the mobility stitch, packets entering at the NEW edge site must
  // traverse the chain's VNF and reach the egress.
  model::NetworkModel m{net::make_line_topology(4, 50.0, 5.0)};
  m.add_site(NodeId{0}, 1000.0);
  const SiteId s1 = m.add_site(NodeId{1}, 1000.0);
  const SiteId s2 = m.add_site(NodeId{2}, 1000.0);
  m.add_site(NodeId{3}, 1000.0);
  const VnfId fw = m.add_vnf("firewall", 1.0);
  m.deploy_vnf(fw, s1, 100.0);

  Middleware mw{std::move(m)};
  const EdgeServiceId edge = mw.register_edge_service("cellular");
  ChainSpec spec;
  spec.name = "mobile";
  spec.ingress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_service = edge;
  spec.egress_node = NodeId{3};
  spec.vnfs = {fw};
  const auto created = mw.create_chain(spec);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(mw.attach_edge(created->chain, s2, edge).ok());

  const dataplane::ElementId roaming_edge =
      mw.deployment().edge_controller(edge).ensure_edge_instance(s2);
  const auto walk = mw.deployment().inject_from(created->chain, roaming_edge,
                                                tuple(77));
  ASSERT_TRUE(walk.delivered) << walk.failure;
  auto& elements = mw.deployment().elements();
  const auto instances = walk.vnf_instances();
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(elements.info(instances[0]).vnf, fw);
  // Path: new edge (node2) -> firewall (node1) -> egress (node3).
  EXPECT_NEAR(walk.latency_ms, 5.0 + 10.0 + 0.1, 1e-6);
}

TEST(EdgeAddition, UnknownChainFails) {
  Fixture fx;
  Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto result = mw.attach_edge(ChainId{5}, fx.site_a, edge);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kNotFound);
}

// --------------------------------------------------------------- Registry

TEST(ElementRegistry, DedicatedForwarderPerService) {
  // The VNF controller and edge controller must not share forwarders for
  // different services at a site (rule disambiguation invariant).
  Fixture fx;
  Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto created = mw.create_chain(fx.make_spec(edge));
  ASSERT_TRUE(created.ok());
  auto& elements = mw.deployment().elements();

  for (std::size_t id = 0; id < elements.size(); ++id) {
    const auto& info = elements.info(static_cast<dataplane::ElementId>(id));
    if (info.type != ElementType::kForwarder) continue;
    // Collect services attached to this forwarder.
    std::set<std::uint32_t> services;
    for (std::size_t other = 0; other < elements.size(); ++other) {
      const auto& attach =
          elements.info(static_cast<dataplane::ElementId>(other));
      if (attach.attached_forwarder != info.id) continue;
      services.insert(attach.type == ElementType::kVnfInstance
                          ? attach.vnf.value()
                          : 0xFFFFFFFFu);
    }
    EXPECT_LE(services.size(), 1u)
        << "forwarder " << id << " fronts multiple services";
  }
}

}  // namespace
}  // namespace switchboard::control
