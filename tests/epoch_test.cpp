// Unit tests for the epoch-based reclamation domain (common/epoch.hpp):
// grace periods, deferred vs eager reclamation, guard RAII, typed
// deleters, and quiesced teardown.
#include <gtest/gtest.h>

#include <cstddef>

#include "common/epoch.hpp"

namespace switchboard::swb {
namespace {

/// Counts deletions so tests can observe exactly when reclamation runs.
struct Tracked {
  explicit Tracked(int* counter) : counter_{counter} {}
  ~Tracked() { ++*counter_; }
  Tracked(const Tracked&) = delete;
  Tracked& operator=(const Tracked&) = delete;

 private:
  int* counter_;
};

TEST(EpochDomain, RetireWithoutReadersFreesImmediately) {
  EpochDomain domain;
  int freed = 0;
  domain.retire(new Tracked{&freed});
  // No reader is pinned, so the grace period is already over: retire()'s
  // opportunistic reclaim frees the object on the spot.
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(EpochDomain, PinnedReaderDefersReclamation) {
  EpochDomain domain;
  int freed = 0;
  const std::size_t slot = domain.pin();
  domain.retire(new Tracked{&freed});
  EXPECT_EQ(freed, 0);
  EXPECT_EQ(domain.retired_count(), 1u);
  EXPECT_EQ(domain.try_reclaim(), 0u);   // still pinned: nothing frees
  EXPECT_EQ(freed, 0);

  domain.unpin(slot);
  EXPECT_EQ(domain.try_reclaim(), 1u);
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(EpochDomain, LateReaderDoesNotBlockEarlierRetirement) {
  EpochDomain domain;
  int freed = 0;
  const std::size_t early = domain.pin();
  domain.retire(new Tracked{&freed});   // stamped while `early` is pinned
  // A reader pinning AFTER the retirement observes the advanced epoch —
  // it can never reach the retired object, so it must not extend the
  // grace period.
  const std::size_t late = domain.pin();
  domain.unpin(early);
  EXPECT_EQ(domain.try_reclaim(), 1u);
  EXPECT_EQ(freed, 1);
  domain.unpin(late);
}

TEST(EpochDomain, GuardPinsAndUnpinsRaii) {
  EpochDomain domain;
  EXPECT_EQ(domain.pinned_readers(), 0u);
  {
    const EpochGuard guard{domain};
    EXPECT_EQ(domain.pinned_readers(), 1u);
  }
  EXPECT_EQ(domain.pinned_readers(), 0u);
}

TEST(EpochDomain, RetireAdvancesTheGlobalEpoch) {
  EpochDomain domain;
  const std::uint64_t before = domain.current_epoch();
  int freed = 0;
  domain.retire(new Tracked{&freed});
  EXPECT_EQ(domain.current_epoch(), before + 1);
}

TEST(EpochDomain, RawDeleterForm) {
  EpochDomain domain;
  int freed = 0;
  auto* object = new Tracked{&freed};
  domain.retire(static_cast<void*>(object),
                [](void* p) { delete static_cast<Tracked*>(p); });
  EXPECT_EQ(freed, 1);
}

TEST(EpochDomain, DestructorReclaimsEverythingOutstanding) {
  int freed = 0;
  {
    EpochDomain domain;
    const std::size_t slot = domain.pin();
    domain.retire(new Tracked{&freed});
    domain.retire(new Tracked{&freed});
    domain.unpin(slot);
    // Deliberately no try_reclaim(): teardown must free the backlog.
    EXPECT_EQ(freed, 0);
  }
  EXPECT_EQ(freed, 2);
}

TEST(EpochDomain, SlotsAreReusableAcrossPinCycles) {
  EpochDomain domain;
  // Far more pin/unpin cycles than kMaxReaders: slots must recycle.
  for (std::size_t i = 0; i < EpochDomain::kMaxReaders * 4; ++i) {
    const EpochGuard guard{domain};
    EXPECT_EQ(domain.pinned_readers(), 1u);
  }
  EXPECT_EQ(domain.pinned_readers(), 0u);
}

}  // namespace
}  // namespace switchboard::swb
