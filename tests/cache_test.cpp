#include <gtest/gtest.h>

#include "cache/experiment.hpp"
#include "cache/lru_cache.hpp"
#include "cache/web_workload.hpp"

namespace switchboard::cache {
namespace {

// ---------------------------------------------------------------- LruCache

TEST(LruCache, MissThenHit) {
  LruCache cache{1000};
  EXPECT_FALSE(cache.request(1, 100));
  EXPECT_TRUE(cache.request(1, 100));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache{300};
  cache.request(1, 100);
  cache.request(2, 100);
  cache.request(3, 100);
  cache.request(1, 100);   // promote 1
  cache.request(4, 100);   // evicts 2 (LRU)
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LruCache, OversizedObjectNeverAdmitted) {
  LruCache cache{100};
  EXPECT_FALSE(cache.request(1, 500));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCache, UsedBytesTracked) {
  LruCache cache{1000};
  cache.request(1, 400);
  cache.request(2, 300);
  EXPECT_EQ(cache.used_bytes(), 700u);
  EXPECT_EQ(cache.object_count(), 2u);
  cache.request(3, 500);   // must evict 1 (400) to fit
  EXPECT_EQ(cache.used_bytes(), 800u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(LruCache, ClearResets) {
  LruCache cache{1000};
  cache.request(1, 100);
  cache.clear();
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.contains(1));
}

// ------------------------------------------------------------- WebWorkload

TEST(WebWorkload, SizesAreDeterministicPerObject) {
  WorkloadParams params;
  WebWorkload a{params};
  WebWorkload b{params};
  for (ObjectId id = 0; id < 100; ++id) {
    EXPECT_EQ(a.object_size(id), b.object_size(id));
  }
}

TEST(WebWorkload, MeanSizeNearTarget) {
  WorkloadParams params;
  params.mean_object_bytes = 50 * 1024;
  WebWorkload workload{params};
  double total = 0.0;
  const int n = 20000;
  for (ObjectId id = 0; id < n; ++id) {
    total += static_cast<double>(workload.object_size(id));
  }
  EXPECT_NEAR(total / n, 50.0 * 1024, 5.0 * 1024);
}

TEST(WebWorkload, PopularObjectsDominate) {
  WorkloadParams params;
  params.object_count = 10'000;
  WebWorkload workload{params};
  std::size_t head = 0;
  const std::size_t n = 50'000;
  for (std::size_t i = 0; i < n; ++i) {
    if (workload.next().object < 100) ++head;
  }
  // Zipf(1): the top-100 of 10k objects draw roughly half the requests.
  EXPECT_GT(static_cast<double>(head) / n, 0.3);
}

// ---------------------------------------------------------- Shared vs silo

ExperimentParams small_params() {
  ExperimentParams params;
  params.chain_count = 5;
  params.total_cache_bytes = 64ull * 1024 * 1024;
  params.requests_per_chain = 20'000;
  params.workload.object_count = 50'000;
  return params;
}

TEST(CacheExperiment, SharedBeatsSiloedHitRate) {
  const ExperimentParams params = small_params();
  const ExperimentResult shared = run_shared(params);
  const ExperimentResult siloed = run_siloed(params);
  EXPECT_GT(shared.hit_rate, siloed.hit_rate);
  // The paper reports ~30% relative improvement; require a clear gap.
  EXPECT_GT(shared.hit_rate, siloed.hit_rate * 1.1);
}

TEST(CacheExperiment, SharedBeatsSiloedDownloadTime) {
  const ExperimentParams params = small_params();
  const ExperimentResult shared = run_shared(params);
  const ExperimentResult siloed = run_siloed(params);
  EXPECT_LT(shared.mean_download_ms, siloed.mean_download_ms);
}

TEST(CacheExperiment, DownloadTimeModel) {
  ExperimentParams params;
  params.local_rtt_ms = 2.0;
  params.wide_area_rtt_ms = 60.0;
  params.edge_bandwidth_bytes_per_ms = 1024;
  params.origin_bandwidth_bytes_per_ms = 512;
  EXPECT_DOUBLE_EQ(download_time_ms(params, true, 1024), 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(download_time_ms(params, false, 1024), 2.0 + 60.0 + 2.0);
}

TEST(CacheExperiment, RequestCountsMatch) {
  ExperimentParams params = small_params();
  params.requests_per_chain = 1000;
  const ExperimentResult result = run_shared(params);
  EXPECT_EQ(result.requests, 5000u);
}

}  // namespace
}  // namespace switchboard::cache
