#include <gtest/gtest.h>

#include "dataplane/dht_flow_table.hpp"
#include "dataplane/forwarder.hpp"
#include "dataplane/traffic_gen.hpp"

namespace switchboard::dataplane {
namespace {

FiveTuple make_tuple(std::uint32_t i) {
  return FiveTuple{0x0A000000u + i, 0xC0A80001u,
                   static_cast<std::uint16_t>(1000 + i % 60000), 80, 6};
}

constexpr Labels kLabels{5, 2};

// ------------------------------------------------------------ DhtFlowTable

TEST(DhtFlowTable, InsertFindErase) {
  DhtFlowTable dht{4};
  dht.insert(kLabels, make_tuple(1), FlowEntry{10, 20, 30});
  const auto found = dht.find(kLabels, make_tuple(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->vnf_instance, 10u);
  EXPECT_TRUE(dht.erase(kLabels, make_tuple(1)));
  EXPECT_FALSE(dht.find(kLabels, make_tuple(1)).has_value());
}

TEST(DhtFlowTable, EntriesAreReplicatedTwice) {
  DhtFlowTable dht{5};
  for (std::uint32_t i = 0; i < 500; ++i) {
    dht.insert(kLabels, make_tuple(i), FlowEntry{i, i, i});
  }
  std::size_t stored = 0;
  for (std::size_t n = 0; n < dht.node_count(); ++n) {
    stored += dht.shard_size(n);
  }
  EXPECT_EQ(stored, 1000u);   // 500 flows x replication factor 2
  EXPECT_EQ(dht.total_flows(), 500u);
}

TEST(DhtFlowTable, KeysSpreadAcrossNodes) {
  DhtFlowTable dht{5};
  for (std::uint32_t i = 0; i < 2000; ++i) {
    dht.insert(kLabels, make_tuple(i), FlowEntry{i, i, i});
  }
  for (std::size_t n = 0; n < dht.node_count(); ++n) {
    // Perfect balance would be 800/node; require some share everywhere.
    EXPECT_GT(dht.shard_size(n), 100u) << "node " << n;
  }
}

TEST(DhtFlowTable, SurvivesSingleNodeFailure) {
  // Flow affinity survives a forwarder-node crash: every entry is still
  // readable through its replica (the Section 5.3 fault-tolerance goal).
  DhtFlowTable dht{4};
  constexpr std::uint32_t kFlows = 1000;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    dht.insert(kLabels, make_tuple(i), FlowEntry{i, i, i});
  }
  dht.fail_node(1);
  EXPECT_EQ(dht.live_node_count(), 3u);
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    const auto found = dht.find(kLabels, make_tuple(i));
    ASSERT_TRUE(found.has_value()) << "flow " << i << " lost";
    EXPECT_EQ(found->vnf_instance, i);
  }
  // Replication factor restored: the survivors hold 2 copies again.
  std::size_t stored = 0;
  for (std::size_t n = 0; n < dht.node_count(); ++n) {
    stored += dht.shard_size(n);
  }
  EXPECT_EQ(stored, 2 * kFlows);
}

TEST(DhtFlowTable, SurvivesSequentialFailures) {
  DhtFlowTable dht{5};
  constexpr std::uint32_t kFlows = 600;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    dht.insert(kLabels, make_tuple(i), FlowEntry{i, i, i});
  }
  dht.fail_node(0);
  dht.fail_node(3);   // sequential, with re-replication between
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    ASSERT_TRUE(dht.find(kLabels, make_tuple(i)).has_value()) << i;
  }
}

TEST(DhtFlowTable, RecoveryRebalances) {
  DhtFlowTable dht{4};
  for (std::uint32_t i = 0; i < 800; ++i) {
    dht.insert(kLabels, make_tuple(i), FlowEntry{i, i, i});
  }
  dht.fail_node(2);
  EXPECT_EQ(dht.shard_size(2), 0u);
  dht.recover_node(2);
  EXPECT_TRUE(dht.node_alive(2));
  // After recovery + re-replication the node carries load again.
  EXPECT_GT(dht.shard_size(2), 0u);
  for (std::uint32_t i = 0; i < 800; ++i) {
    ASSERT_TRUE(dht.find(kLabels, make_tuple(i)).has_value()) << i;
  }
  EXPECT_EQ(dht.total_flows(), 800u);
}

TEST(DhtFlowTable, InsertAfterFailureUsesSurvivors) {
  DhtFlowTable dht{3};
  dht.fail_node(0);
  dht.insert(kLabels, make_tuple(9), FlowEntry{9, 9, 9});
  ASSERT_TRUE(dht.find(kLabels, make_tuple(9)).has_value());
  EXPECT_EQ(dht.shard_size(0), 0u);
}

// ----------------------------------------------------------- MigrateFlows

TEST(MigrateFlows, MovesOnlyMatchingInstanceAndRepins) {
  Forwarder source{1};
  Forwarder target{2};
  LoadBalanceRule rule;
  rule.vnf_instances.add(100, 1.0);
  rule.vnf_instances.add(101, 1.0);
  rule.next_forwarders.add(200, 1.0);
  source.rules().install(kLabels, std::move(rule));

  // Establish 200 flows split across the two instances.
  for (std::uint32_t i = 0; i < 200; ++i) {
    Packet p;
    p.flow = make_tuple(i);
    p.labels = kLabels;
    p.arrival_source = 50;
    source.process_from_wire(p);
  }
  std::size_t pinned_100 = 0;
  source.flow_table().for_each(
      [&](const Labels&, const FiveTuple&, const FlowEntry& e) {
        if (e.vnf_instance == 100) ++pinned_100;
      });
  ASSERT_GT(pinned_100, 0u);

  // Drain instance 100's flows to the target forwarder (new instance 300).
  const std::size_t moved = source.migrate_flows(target, 100, 300);
  EXPECT_EQ(moved, pinned_100);
  EXPECT_EQ(source.flow_table().size(), 200 - moved);
  EXPECT_EQ(target.flow_table().size(), moved);

  // Migrated flows keep affinity at the target under the new instance.
  target.flow_table().for_each(
      [&](const Labels&, const FiveTuple&, const FlowEntry& e) {
        EXPECT_EQ(e.vnf_instance, 300u);
      });
  // Remaining flows at the source are untouched (still instance 101).
  source.flow_table().for_each(
      [&](const Labels&, const FiveTuple&, const FlowEntry& e) {
        EXPECT_EQ(e.vnf_instance, 101u);
      });
}

TEST(MigrateFlows, MigratedFlowServedByTarget) {
  Forwarder source{1};
  Forwarder target{2};
  LoadBalanceRule rule;
  rule.vnf_instances.add(100, 1.0);
  rule.next_forwarders.add(200, 1.0);
  source.rules().install(kLabels, rule);

  Packet p;
  p.flow = make_tuple(7);
  p.labels = kLabels;
  p.arrival_source = 50;
  source.process_from_wire(p);
  source.migrate_flows(target, 100, 300);

  // The same connection's next packet at the target hits the moved state
  // (no rule needed at the target).
  const ForwardAction action = target.process_from_wire(p);
  EXPECT_EQ(action.type, ActionType::kDeliverToAttached);
  EXPECT_EQ(action.element, 300u);
  EXPECT_EQ(target.counters().flow_misses, 0u);
}

}  // namespace
}  // namespace switchboard::dataplane
