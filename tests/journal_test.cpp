// Controller durability (DESIGN.md §13): DurableStore and StateJournal
// mechanics, TwoPhaseTracker replay idempotency, and the crash-with-
// amnesia recovery path of the Global Switchboard — cold start from
// snapshot+replay, re-driven 2PC commits, epoch fencing at participants
// and Local Switchboards, and reconciliation of orphaned capacity.
#include <gtest/gtest.h>

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "sim/durable_store.hpp"
#include "switchboard/switchboard.hpp"

namespace switchboard {
namespace {

using control::ChainSpec;
using control::StateJournal;
using control::TwoPhaseState;
using control::TwoPhaseTracker;
using core::DeploymentConfig;
using core::Middleware;

/// Line A(0) - X(1) - Y(2) - B(3); firewall deployed at X and Y.
model::NetworkModel make_two_pool_model() {
  model::NetworkModel m{net::make_line_topology(4, 100.0, 5.0)};
  m.add_site(NodeId{0}, 100.0, "A");
  m.add_site(NodeId{1}, 100.0, "X");
  m.add_site(NodeId{2}, 100.0, "Y");
  m.add_site(NodeId{3}, 100.0, "B");
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, SiteId{1}, 100.0);
  m.deploy_vnf(fw, SiteId{2}, 100.0);
  return m;
}

ChainSpec make_span_spec(EdgeServiceId edge, VnfId fw, std::string name) {
  ChainSpec spec;
  spec.name = std::move(name);
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{3};
  spec.vnfs = {fw};
  spec.forward_traffic = 1.0;
  spec.reverse_traffic = 0.5;
  return spec;
}

/// End-state fingerprint: chain/route/weight structure plus the full load
/// model, formatted round-trip-exact so two runs can be compared byte for
/// byte.  Excludes epochs and counters, which legitimately differ between
/// a crashed run and its fault-free reference.
std::string state_digest(core::Deployment& dep,
                         const std::vector<ChainId>& chains) {
  std::ostringstream out;
  out << std::setprecision(17);
  for (const ChainId chain : chains) {
    const control::ChainRecord* rec = dep.global().find_record(chain);
    if (rec == nullptr) {
      out << "c" << chain.value() << "=absent\n";
      continue;
    }
    out << "c" << rec->id.value() << " active=" << rec->active;
    for (const control::RouteRecord& route : rec->routes) {
      out << " r" << route.id.value() << "@";
      for (const SiteId site : route.vnf_sites) out << site.value() << ",";
      out << "w=" << route.weight;
    }
    out << "\n";
  }
  const te::Loads& loads = dep.global().loads();
  const model::NetworkModel& m = dep.network_model();
  for (std::size_t e = 0; e < m.topology().link_count(); ++e) {
    const LinkId link{static_cast<LinkId::underlying_type>(e)};
    out << "L" << e << "=" << loads.link_load(link) << "\n";
  }
  for (std::size_t s = 0; s < m.sites().size(); ++s) {
    const SiteId site{static_cast<SiteId::underlying_type>(s)};
    out << "S" << s << "=" << loads.site_load(site);
    for (std::size_t f = 0; f < m.vnfs().size(); ++f) {
      const VnfId vnf{static_cast<VnfId::underlying_type>(f)};
      out << " v" << f << "=" << loads.vnf_site_load(vnf, site);
    }
    out << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------- DurableStore

TEST(DurableStore, AppendWriteReadEraseAndCounters) {
  sim::DurableStore store;
  EXPECT_FALSE(store.exists("a"));
  EXPECT_EQ(store.read("a"), "");

  store.append("a", "one\n");
  store.append("a", "two\n");
  EXPECT_TRUE(store.exists("a"));
  EXPECT_EQ(store.read("a"), "one\ntwo\n");
  EXPECT_EQ(store.appends(), 2u);

  store.write("a", "fresh\n");
  EXPECT_EQ(store.read("a"), "fresh\n");
  EXPECT_EQ(store.writes(), 1u);
  EXPECT_GE(store.bytes_written(), std::string{"one\ntwo\nfresh\n"}.size());

  store.erase("a");
  EXPECT_FALSE(store.exists("a"));
  EXPECT_EQ(store.read("a"), "");
  store.check_invariants();
}

// ---------------------------------------------------------- StateJournal

TEST(StateJournal, AppendsAccumulateInTheLog) {
  sim::DurableStore store;
  StateJournal journal{store, {.name = "j", .snapshot_interval = 0}};
  journal.append("t=epoch;n=1");
  journal.append("t=nri;n=0");
  EXPECT_EQ(journal.appends(), 2u);
  EXPECT_FALSE(journal.wants_snapshot());   // interval 0 = never compact
  const auto log = journal.log_records();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "t=epoch;n=1");
  EXPECT_EQ(log[1], "t=nri;n=0");
  EXPECT_TRUE(journal.snapshot_records().empty());
  journal.check_invariants();
}

TEST(StateJournal, SnapshotCompactsTheLog) {
  sim::DurableStore store;
  StateJournal journal{store, {.name = "j", .snapshot_interval = 3}};
  journal.append("r1");
  journal.append("r2");
  EXPECT_FALSE(journal.wants_snapshot());
  journal.append("r3");
  EXPECT_TRUE(journal.wants_snapshot());

  journal.write_snapshot({"s1", "s2"});
  EXPECT_EQ(journal.snapshots_taken(), 1u);
  EXPECT_EQ(journal.records_compacted(), 3u);
  EXPECT_EQ(journal.appends_since_snapshot(), 0u);
  EXPECT_FALSE(journal.wants_snapshot());
  EXPECT_TRUE(journal.log_records().empty());
  const auto snap = journal.snapshot_records();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0], "s1");
  EXPECT_EQ(snap[1], "s2");

  journal.append("r4");   // post-snapshot appends land in the fresh log
  ASSERT_EQ(journal.log_records().size(), 1u);
  EXPECT_EQ(journal.log_records()[0], "r4");
  journal.check_invariants();
}

TEST(StateJournal, TornTrailingRecordIsDroppedAndCounted) {
  // A crash mid-append leaves the last log record unterminated; replay
  // must shed exactly that record (its write never durably completed),
  // keep every record before it, and count the drop.
  sim::DurableStore store;
  StateJournal writer{store, {.name = "j", .snapshot_interval = 0}};
  writer.append("t=epoch;n=1");
  writer.append("t=nri;n=0");
  store.append(writer.log_blob(), "t=chain;id=7");   // no trailing '\n'

  StateJournal reader{store, {.name = "j", .snapshot_interval = 0}};
  const auto log = reader.log_records();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "t=epoch;n=1");
  EXPECT_EQ(log[1], "t=nri;n=0");
  EXPECT_EQ(reader.torn_records_dropped(), 1u);

  // The next append re-terminates the blob: the torn bytes stay dead (a
  // second read still drops one torn record, never a merged frankenstein
  // record), and the new record survives.
  reader.append("t=nri;n=1");
  const auto log2 = reader.log_records();
  ASSERT_EQ(log2.size(), 3u);
  EXPECT_EQ(log2[2], "t=nri;n=1");
  reader.check_invariants();
}

TEST(StateJournal, SnapshotAtExactIntervalBoundary) {
  // wants_snapshot() must trip exactly AT the interval, not one past it,
  // and the appends_since_snapshot counter must reset so the next window
  // is a full interval wide.
  sim::DurableStore store;
  StateJournal journal{store, {.name = "j", .snapshot_interval = 2}};
  journal.append("r1");
  EXPECT_FALSE(journal.wants_snapshot());
  journal.append("r2");
  EXPECT_TRUE(journal.wants_snapshot());
  journal.write_snapshot({"s1"});
  EXPECT_FALSE(journal.wants_snapshot());
  EXPECT_EQ(journal.appends_since_snapshot(), 0u);

  journal.append("r3");
  EXPECT_FALSE(journal.wants_snapshot());
  journal.append("r4");
  EXPECT_TRUE(journal.wants_snapshot());
  EXPECT_EQ(journal.snapshots_taken(), 1u);
  EXPECT_EQ(journal.records_compacted(), 2u);
  journal.check_invariants();
}

TEST(StateJournal, ReplayCostScalesWithPersistedRecords) {
  sim::DurableStore store;
  StateJournal journal{store,
                       {.name = "j",
                        .snapshot_interval = 0,
                        .replay_cost_per_record = sim::Duration{50}}};
  EXPECT_EQ(journal.replay_cost(), sim::Duration{0});
  journal.write_snapshot({"s1", "s2", "s3"});
  journal.append("r1");
  EXPECT_EQ(journal.replay_cost(), sim::Duration{4 * 50});
}

// ------------------------------------------------- TwoPhaseTracker replay

TEST(TwoPhaseReplay, DuplicateTerminalTransitionsAreRejectedAndCounted) {
  TwoPhaseTracker tracker;
  const ChainId chain{1};
  const RouteId route{2};
  tracker.transition(chain, route, TwoPhaseState::kPrepared);
  tracker.transition(chain, route, TwoPhaseState::kCommitted);

  // A late abort replayed against a committed route is protocol noise:
  // shed, counted, state untouched.
  EXPECT_FALSE(tracker.try_transition(chain, route, TwoPhaseState::kAborted));
  EXPECT_EQ(tracker.rejected(), 1u);
  EXPECT_EQ(tracker.state(chain, route), TwoPhaseState::kCommitted);

  // A re-delivered commit is an idempotent terminal self-loop.
  EXPECT_TRUE(tracker.try_transition(chain, route, TwoPhaseState::kCommitted));
  EXPECT_EQ(tracker.rejected(), 1u);
  EXPECT_EQ(tracker.count(TwoPhaseState::kCommitted), 1u);
  tracker.check_invariants();
}

TEST(TwoPhaseReplay, CommitAfterAbortStaysRejected) {
  TwoPhaseTracker tracker;
  const ChainId chain{3};
  const RouteId route{4};
  tracker.transition(chain, route, TwoPhaseState::kPrepared);
  tracker.transition(chain, route, TwoPhaseState::kAborted);
  // The coordinator must never commit past a no vote; a replayed commit
  // for the aborted round bounces every time it is re-delivered.
  EXPECT_FALSE(tracker.try_transition(chain, route,
                                      TwoPhaseState::kCommitted));
  EXPECT_FALSE(tracker.try_transition(chain, route,
                                      TwoPhaseState::kCommitted));
  EXPECT_EQ(tracker.rejected(), 2u);
  EXPECT_EQ(tracker.state(chain, route), TwoPhaseState::kAborted);
  tracker.check_invariants();
}

// ------------------------------------------------- participant epoch fence

TEST(EpochFence, ParticipantRejectsCommandsFromOlderIncarnations) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  Middleware mw{std::move(m), {}};
  control::VnfController& c = mw.deployment().vnf_controller(fw);

  // Epoch 5 prepares; the fence advances to 5.
  EXPECT_TRUE(c.prepare(ChainId{9}, RouteId{1}, SiteId{1}, 1.0, 0, 5));
  EXPECT_EQ(c.highest_epoch(), 5u);

  // A stale incarnation's abort bounces without touching the round.
  c.abort(ChainId{9}, RouteId{1}, 3);
  EXPECT_EQ(c.stale_commands_rejected(), 1u);
  ASSERT_EQ(c.committed_routes().size(), 0u);

  // The current incarnation still drives the round to completion.
  c.commit(ChainId{9}, RouteId{1}, 42, 5);
  ASSERT_EQ(c.committed_routes().size(), 1u);
  EXPECT_EQ(c.committed_routes()[0].first, ChainId{9});

  // An unfenced (legacy) call bypasses the fence entirely.
  c.release(ChainId{9}, RouteId{1});
  EXPECT_EQ(c.committed_routes().size(), 0u);
  EXPECT_EQ(c.stale_commands_rejected(), 1u);
  c.check_invariants();
}

// ----------------------------------------- cold start: quiet-state replay

TEST(ColdStart, QuietCrashRecoversIdenticalStateAndBumpsEpoch) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config;
  config.durable_controller = true;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto a = mw.create_chain(make_span_spec(edge, fw, "a"));
  ASSERT_TRUE(a.ok()) << a.error().to_string();
  const auto b = mw.create_chain(make_span_spec(edge, fw, "b"));
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  const std::vector<ChainId> chains{a->chain, b->chain};

  EXPECT_TRUE(dep.global().durable());
  EXPECT_EQ(dep.global().epoch(), 1u);
  const std::string before = state_digest(dep, chains);

  // Crash with amnesia at a quiet moment and restore: replay alone must
  // reproduce the exact pre-crash state.
  dep.register_fault_targets();
  const sim::SimTime t0 = dep.simulator().now();
  dep.fault_injector().crash_at(t0 + sim::from_ms(10.0),
                                "controller:global");
  dep.fault_injector().restore_at(t0 + sim::from_ms(50.0),
                                  "controller:global");
  dep.simulator().run_until(t0 + sim::from_ms(2000.0));

  EXPECT_EQ(dep.global().epoch(), 2u);
  EXPECT_EQ(state_digest(dep, chains), before);

  const control::ColdStartReport& report = dep.global().last_cold_start();
  EXPECT_EQ(report.epoch, 2u);
  EXPECT_EQ(report.chains_restored, 2u);
  EXPECT_EQ(report.routes_restored, 2u);
  EXPECT_GT(report.replayed_records, 0u);
  EXPECT_EQ(report.redriven_commits, 0u);
  EXPECT_EQ(report.aborted_inflight, 0u);
  EXPECT_EQ(report.orphans_released, 0u);
  EXPECT_GT(report.replay_cost, sim::Duration{0});

  // The amnesia restore is traced distinctly from a plain restore.
  ASSERT_EQ(dep.fault_injector().trace().size(), 2u);
  EXPECT_EQ(dep.fault_injector().trace()[0].kind, "crash");
  EXPECT_EQ(dep.fault_injector().trace()[1].kind, "restore-amnesia");

  dep.global().check_invariants();
  dep.state_journal()->check_invariants();
  dep.durable_store().check_invariants();
}

TEST(ColdStart, SnapshotCompactionSurvivesCrash) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config;
  config.durable_controller = true;
  config.journal.snapshot_interval = 4;   // compact aggressively
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  std::vector<ChainId> chains;
  for (int i = 0; i < 3; ++i) {
    const auto r =
        mw.create_chain(make_span_spec(edge, fw, "c" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    chains.push_back(r->chain);
  }
  ASSERT_GT(dep.state_journal()->snapshots_taken(), 0u);
  ASSERT_GT(dep.state_journal()->records_compacted(), 0u);
  const std::string before = state_digest(dep, chains);

  dep.register_fault_targets();
  const sim::SimTime t0 = dep.simulator().now();
  dep.fault_injector().crash_at(t0 + sim::from_ms(5.0), "controller:global");
  dep.fault_injector().restore_at(t0 + sim::from_ms(25.0),
                                  "controller:global");
  dep.simulator().run_until(t0 + sim::from_ms(2000.0));

  EXPECT_EQ(state_digest(dep, chains), before);
  EXPECT_EQ(dep.global().last_cold_start().chains_restored, 3u);
}

// ------------------------------------ crash mid-2PC: re-driven commit

TEST(ColdStart, CrashBetweenPrepareAndCommitConvergesToReferenceRun) {
  // Two runs over the same model and inputs.  `crash` kills the Global
  // Switchboard after the 2PC prepare round of the second chain was
  // journaled but before the commit round ran; recovery must re-drive the
  // commit and land byte-identically on the fault-free end state.
  auto run = [](bool crash) {
    model::NetworkModel m = make_two_pool_model();
    const VnfId fw = m.vnfs()[0].id;
    DeploymentConfig config;
    config.durable_controller = true;
    Middleware mw{std::move(m), config};
    core::Deployment& dep = mw.deployment();

    const EdgeServiceId edge = mw.register_edge_service("vpn");
    const auto a = mw.create_chain(make_span_spec(edge, fw, "a"));
    EXPECT_TRUE(a.ok());
    const ChainId chain_a = a->chain;

    // The second creation is driven manually: its completion callback dies
    // with the crashed incarnation (the route still must activate).
    const sim::SimTime t0 = dep.simulator().now();
    bool done_fired = false;
    dep.global().create_chain(make_span_spec(edge, fw, "b"),
                              [&done_fired](Result<control::CreationReport>) {
                                done_fired = true;
                              });
    const ChainId chain_b{chain_a.value() + 1};

    if (crash) {
      // Timeline from t0: site resolve 35 ms, route compute +20 ms,
      // prepare round +35 ms -> prep journaled at 90 ms; commit runs at
      // 110 ms.  Crash in the gap.
      dep.register_fault_targets();
      dep.fault_injector().crash_at(t0 + sim::from_ms(95.0),
                                    "controller:global");
      dep.fault_injector().restore_at(t0 + sim::from_ms(200.0),
                                      "controller:global");
      dep.simulator().run_until(t0 + sim::from_ms(100.0));

      // Prove the crash point: chain b's round is journaled prepared but
      // not committed.
      bool saw_prep = false;
      bool saw_commit = false;
      for (const std::string& record : dep.state_journal()->log_records()) {
        if (record.find("t=prep;chain=" + std::to_string(chain_b.value())) !=
            std::string::npos) {
          saw_prep = true;
        }
        if (record.find("t=commit;chain=" +
                        std::to_string(chain_b.value())) !=
            std::string::npos) {
          saw_commit = true;
        }
      }
      EXPECT_TRUE(saw_prep) << "crash landed before the prepare round";
      EXPECT_FALSE(saw_commit) << "crash landed after the commit round";
    }

    dep.simulator().run_until(t0 + sim::from_ms(3000.0));

    if (crash) {
      EXPECT_FALSE(done_fired)
          << "the crashed incarnation's callback must not fire";
      EXPECT_EQ(dep.global().epoch(), 2u);
      EXPECT_EQ(dep.global().last_cold_start().redriven_commits, 1u);
    } else {
      EXPECT_TRUE(done_fired);
      EXPECT_EQ(dep.global().epoch(), 1u);
    }

    // Both runs must deliver on both chains end to end.
    for (const ChainId chain : {chain_a, chain_b}) {
      const auto walk =
          mw.send(chain, dataplane::FiveTuple{0x0A020001u, 0xC0A80002u, 3001,
                                              443, 6});
      EXPECT_TRUE(walk.delivered) << walk.failure;
    }
    dep.global().check_invariants();
    return state_digest(dep, {chain_a, chain_b});
  };

  const std::string reference = run(false);
  const std::string recovered = run(true);
  EXPECT_EQ(recovered, reference);
}

TEST(ColdStart, UnpreparedInflightRoundIsAborted) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config;
  config.durable_controller = true;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const sim::SimTime t0 = dep.simulator().now();
  dep.global().create_chain(make_span_spec(edge, fw, "x"),
                            [](Result<control::CreationReport>) {});

  // Crash after the 2PC begin was journaled (55 ms: route computed,
  // commit_route ran) but before the prepare round (90 ms): recovery
  // cannot know any vote, so the round must abort.
  dep.register_fault_targets();
  dep.fault_injector().crash_at(t0 + sim::from_ms(60.0),
                                "controller:global");
  dep.fault_injector().restore_at(t0 + sim::from_ms(150.0),
                                  "controller:global");
  dep.simulator().run_until(t0 + sim::from_ms(3000.0));

  EXPECT_EQ(dep.global().last_cold_start().aborted_inflight, 1u);
  EXPECT_EQ(dep.global().last_cold_start().redriven_commits, 0u);
  // The chain record replayed but never activated; no capacity is held.
  const control::ChainRecord* rec = dep.global().find_record(ChainId{0});
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->active);
  EXPECT_TRUE(rec->routes.empty());
  EXPECT_EQ(dep.vnf_controller(fw).committed_routes().size(), 0u);
  dep.global().check_invariants();
}

// -------------------------------------------- reconciliation + LS fencing

TEST(ColdStart, OrphanedParticipantCapacityIsReleasedOnReconciliation) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config;
  config.durable_controller = true;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto a = mw.create_chain(make_span_spec(edge, fw, "a"));
  ASSERT_TRUE(a.ok());

  // Plant an orphan: capacity committed at the participant for a round no
  // journal record owns (as if the journaled release was lost with a
  // crashed disk batch on a pre-durability build).
  control::VnfController& c = dep.vnf_controller(fw);
  ASSERT_TRUE(c.prepare(ChainId{77}, RouteId{99}, SiteId{1}, 2.0, 0));
  c.commit(ChainId{77}, RouteId{99}, 42);
  ASSERT_EQ(c.committed_routes().size(), 2u);   // chain a + the orphan

  dep.register_fault_targets();
  const sim::SimTime t0 = dep.simulator().now();
  dep.fault_injector().crash_at(t0 + sim::from_ms(5.0), "controller:global");
  dep.fault_injector().restore_at(t0 + sim::from_ms(25.0),
                                  "controller:global");
  dep.simulator().run_until(t0 + sim::from_ms(2000.0));

  // The sweep released exactly the orphan; chain a's capacity survives.
  EXPECT_EQ(dep.global().last_cold_start().orphans_released, 1u);
  ASSERT_EQ(c.committed_routes().size(), 1u);
  EXPECT_EQ(c.committed_routes()[0].first, a->chain);
  dep.global().check_invariants();
}

TEST(ColdStart, LocalSwitchboardFencesStaleEpochAnnouncements) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config;
  config.durable_controller = true;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto a = mw.create_chain(make_span_spec(edge, fw, "a"));
  ASSERT_TRUE(a.ok());

  dep.register_fault_targets();
  const sim::SimTime t0 = dep.simulator().now();
  dep.fault_injector().crash_at(t0 + sim::from_ms(5.0), "controller:global");
  dep.fault_injector().restore_at(t0 + sim::from_ms(25.0),
                                  "controller:global");
  dep.simulator().run_until(t0 + sim::from_ms(2000.0));

  // The epoch-2 republish advanced every site's fence.
  control::LocalSwitchboard& ls = dep.local(SiteId{0});
  ASSERT_EQ(ls.highest_route_epoch(), 2u);
  const std::uint64_t rejected_before = ls.stale_routes_rejected();

  // A retained epoch-1 announcement from the dead incarnation arrives
  // late: it must be fenced, not applied.
  const control::ChainRecord& rec = mw.chain_record(a->chain);
  control::RouteAnnouncement stale;
  stale.chain = rec.id;
  stale.route = RouteId{555};
  stale.chain_label = rec.labels.chain;
  stale.egress_label = rec.labels.egress_site;
  stale.ingress_site = rec.ingress_site;
  stale.egress_site = rec.egress_site;
  stale.weight = 1.0;
  stale.epoch = 1;
  ls.handle_route(stale);
  EXPECT_EQ(ls.stale_routes_rejected(), rejected_before + 1);
  EXPECT_EQ(ls.highest_route_epoch(), 2u);

  // Route announcements round-trip the epoch through the wire format.
  const std::string wire = control::serialize(stale);
  const auto parsed = control::parse_route(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->epoch, 1u);
}

}  // namespace
}  // namespace switchboard
