#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "common/cost.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/zipf.hpp"

namespace switchboard {
namespace {

// ---------------------------------------------------------------- StrongId

TEST(StrongId, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
}

TEST(StrongId, ValueRoundTrips) {
  NodeId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, Comparisons) {
  NodeId a{1};
  NodeId b{2};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, NodeId{1});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, SiteId>);
  static_assert(!std::is_same_v<ChainId, VnfId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<ChainId> set;
  set.insert(ChainId{1});
  set.insert(ChainId{1});
  set.insert(ChainId{2});
  EXPECT_EQ(set.size(), 2u);
}

// ------------------------------------------------------------------ Result

TEST(Result, HoldsValue) {
  Result<int> r{7};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(0), 7);
}

TEST(Result, HoldsError) {
  Result<int> r{ErrorCode::kNotFound, "missing chain"};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "missing chain");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, ErrorPropagates) {
  Status s{ErrorCode::kRejected, "vnf voted abort"};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kRejected);
  EXPECT_NE(s.error().to_string().find("abort"), std::string::npos);
}

// --------------------------------------------------------------------- Rng

TEST(Rng, Deterministic) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng{5};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);   // all values hit
}

TEST(Rng, ExponentialMean) {
  Rng rng{17};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(Rng, NormalMoments) {
  Rng rng{99};
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng{31};
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.weighted_index(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng{77};
  const auto sample = rng.sample_without_replacement(50, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const auto v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{123};
  Rng b = a.split();
  // Streams should not be identical.
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{3};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// ------------------------------------------------------------ UtilizationCost

TEST(UtilizationCost, ZeroAtZero) {
  UtilizationCost cost;
  EXPECT_DOUBLE_EQ(cost(0.0), 0.0);
}

TEST(UtilizationCost, LinearBelowFirstBreakpoint) {
  UtilizationCost cost;
  EXPECT_NEAR(cost(0.2), 0.2, 1e-12);   // slope 1 below 1/3
}

TEST(UtilizationCost, IncreasesSteeplyAboveCapacity) {
  UtilizationCost cost;
  EXPECT_GT(cost(1.2) - cost(1.1), 100.0);   // slope 5000 region
}

TEST(UtilizationCost, Monotone) {
  UtilizationCost cost;
  double prev = -1.0;
  for (double u = 0.0; u <= 2.0; u += 0.01) {
    const double c = cost(u);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(UtilizationCost, Convex) {
  UtilizationCost cost;
  // Discrete second difference must be non-negative for convexity.
  for (double u = 0.01; u <= 1.9; u += 0.01) {
    const double second =
        cost(u + 0.01) - 2.0 * cost(u) + cost(u - 0.01);
    EXPECT_GE(second, -1e-9) << "at u=" << u;
  }
}

TEST(UtilizationCost, DeltaMatchesDifference) {
  UtilizationCost cost;
  EXPECT_NEAR(cost.delta(0.3, 0.8), cost(0.8) - cost(0.3), 1e-12);
}

TEST(UtilizationCost, SlopeMatchesSegments) {
  UtilizationCost cost;
  EXPECT_DOUBLE_EQ(cost.slope_at(0.1), 1.0);
  EXPECT_DOUBLE_EQ(cost.slope_at(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cost.slope_at(0.8), 10.0);
  EXPECT_DOUBLE_EQ(cost.slope_at(0.95), 70.0);
  EXPECT_DOUBLE_EQ(cost.slope_at(1.05), 500.0);
  EXPECT_DOUBLE_EQ(cost.slope_at(1.5), 5000.0);
}

TEST(UtilizationCost, CustomBreakpoints) {
  UtilizationCost cost({0.5}, {1.0, 2.0});
  EXPECT_NEAR(cost(0.25), 0.25, 1e-12);
  EXPECT_NEAR(cost(1.0), 0.5 + 2.0 * 0.5, 1e-12);
}

// ------------------------------------------------------------------- Stats

TEST(SampleStats, BasicMoments) {
  SampleStats stats;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SampleStats, Percentiles) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) stats.add(static_cast<double>(i));
  EXPECT_NEAR(stats.median(), 50.5, 1e-9);
  EXPECT_NEAR(stats.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(stats.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(stats.percentile(99), 99.01, 0.1);
}

TEST(SampleStats, PercentileAfterAdd) {
  SampleStats stats;
  stats.add(1.0);
  EXPECT_DOUBLE_EQ(stats.median(), 1.0);
  stats.add(100.0);   // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(stats.median(), 50.5);
}

TEST(SampleStats, Clear) {
  SampleStats stats;
  stats.add(5.0);
  stats.clear();
  EXPECT_TRUE(stats.empty());
  EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h{0.0, 10.0, 10};
  h.add(-1.0);
  h.add(0.5);
  h.add(9.99);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[9], 1u);
}

// -------------------------------------------------------------------- Zipf

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfSampler zipf{100, 1.0};
  double total = 0.0;
  for (std::size_t k = 0; k < 100; ++k) total += zipf.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankZeroMostPopular) {
  ZipfSampler zipf{50, 1.0};
  EXPECT_GT(zipf.probability(0), zipf.probability(1));
  EXPECT_GT(zipf.probability(1), zipf.probability(10));
}

TEST(Zipf, EmpiricalSkewMatches) {
  ZipfSampler zipf{1000, 1.0};
  Rng rng{11};
  std::vector<int> counts(1000, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[zipf.sample(rng)]++;
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, zipf.probability(0), 0.01);
  // Head heavier than tail.
  EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(Zipf, ExponentZeroIsUniform) {
  ZipfSampler zipf{10, 0.0};
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.probability(k), 0.1, 1e-9);
  }
}

}  // namespace
}  // namespace switchboard
