#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "dataplane/flow_table.hpp"
#include "dataplane/forwarder.hpp"
#include "dataplane/load_balancer.hpp"
#include "dataplane/ovs_forwarder.hpp"
#include "dataplane/packet.hpp"
#include "dataplane/traffic_gen.hpp"

namespace switchboard::dataplane {
namespace {

FiveTuple make_tuple(std::uint32_t i) {
  return FiveTuple{0x0A000000u + i, 0xC0A80001u,
                   static_cast<std::uint16_t>(1000 + i), 80, 6};
}

// ------------------------------------------------------------------ Packet

TEST(Packet, ReversedSwapsEndpoints) {
  const FiveTuple t{1, 2, 10, 20, 6};
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, 2u);
  EXPECT_EQ(r.dst_ip, 1u);
  EXPECT_EQ(r.src_port, 20);
  EXPECT_EQ(r.dst_port, 10);
  EXPECT_EQ(r.reversed(), t);
}

TEST(Packet, FlowHashDiscriminates) {
  const Labels labels{1, 2};
  std::set<std::uint64_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(flow_hash(labels, make_tuple(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);   // no collisions on this small set
}

TEST(Packet, FlowHashDependsOnLabels) {
  const FiveTuple t = make_tuple(1);
  EXPECT_NE(flow_hash(Labels{1, 1}, t), flow_hash(Labels{2, 1}, t));
  EXPECT_NE(flow_hash(Labels{1, 1}, t), flow_hash(Labels{1, 2}, t));
}

// --------------------------------------------------------------- FlowTable

TEST(FlowTable, InsertFindErase) {
  FlowTable table;
  const Labels labels{7, 3};
  const FiveTuple t = make_tuple(1);
  EXPECT_EQ(table.find(labels, t), nullptr);
  table.insert(labels, t, FlowEntry{10, 20, 30});
  const FlowEntry* entry = table.find(labels, t);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->vnf_instance, 10u);
  EXPECT_EQ(entry->next_forwarder, 20u);
  EXPECT_EQ(entry->prev_element, 30u);
  EXPECT_TRUE(table.erase(labels, t));
  EXPECT_EQ(table.find(labels, t), nullptr);
  EXPECT_FALSE(table.erase(labels, t));
}

TEST(FlowTable, InsertOverwrites) {
  FlowTable table;
  const Labels labels{1, 1};
  const FiveTuple t = make_tuple(1);
  table.insert(labels, t, FlowEntry{1, 1, 1});
  table.insert(labels, t, FlowEntry{2, 2, 2});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(labels, t)->vnf_instance, 2u);
}

TEST(FlowTable, GrowsBeyondInitialCapacity) {
  FlowTable table{16};
  const Labels labels{1, 1};
  for (std::uint32_t i = 0; i < 10000; ++i) {
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }
  EXPECT_EQ(table.size(), 10000u);
  EXPECT_GE(table.capacity(), 10000u);
  for (std::uint32_t i = 0; i < 10000; ++i) {
    const FlowEntry* e = table.find(labels, make_tuple(i));
    ASSERT_NE(e, nullptr) << i;
    EXPECT_EQ(e->vnf_instance, i);
  }
}

TEST(FlowTable, SameTupleDifferentLabelsAreDistinct) {
  FlowTable table;
  const FiveTuple t = make_tuple(1);
  table.insert(Labels{1, 1}, t, FlowEntry{1, 1, 1});
  table.insert(Labels{2, 1}, t, FlowEntry{2, 2, 2});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.find(Labels{1, 1}, t)->vnf_instance, 1u);
  EXPECT_EQ(table.find(Labels{2, 1}, t)->vnf_instance, 2u);
}

TEST(FlowTable, TombstonesDoNotBreakProbing) {
  FlowTable table{16};
  const Labels labels{1, 1};
  // Fill, erase half, re-find the rest.
  for (std::uint32_t i = 0; i < 64; ++i) {
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }
  for (std::uint32_t i = 0; i < 64; i += 2) {
    EXPECT_TRUE(table.erase(labels, make_tuple(i)));
  }
  for (std::uint32_t i = 1; i < 64; i += 2) {
    ASSERT_NE(table.find(labels, make_tuple(i)), nullptr) << i;
  }
  // Reinsert into tombstoned slots.
  for (std::uint32_t i = 0; i < 64; i += 2) {
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }
  EXPECT_EQ(table.size(), 64u);
}

// Regression: erase/grow interaction near the 70% growth threshold.  The
// table used to double capacity whenever live + tombstones crossed the
// threshold, so an insert/erase churn workload (connections completing as
// fast as they arrive) grew without bound even though the live set never
// did.  grow() now purges tombstones in place unless the live entries
// alone need the room.
TEST(FlowTable, EraseInsertChurnAcrossGrowthBoundary) {
  FlowTable table{16};
  const Labels labels{1, 1};
  // Sit just under the growth threshold of the 16-slot table, then churn
  // insert/erase/find across it many times.
  for (std::uint32_t i = 0; i < 10; ++i) {
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }
  for (std::uint32_t round = 0; round < 1000; ++round) {
    const std::uint32_t dead = 10 + round;
    const std::uint32_t born = dead + 1;
    table.insert(labels, make_tuple(born), FlowEntry{born, born, born});
    EXPECT_TRUE(table.erase(labels, make_tuple(round < 10 ? round : dead - 1)))
        << round;
    // Every entry that should be live is still findable mid-churn.
    if (round >= 10) {
      const FlowEntry* e = table.find(labels, make_tuple(born));
      ASSERT_NE(e, nullptr) << round;
      EXPECT_EQ(e->vnf_instance, born);
      EXPECT_EQ(table.find(labels, make_tuple(dead - 1)), nullptr) << round;
    }
    table.check_invariants();
  }
  EXPECT_EQ(table.size(), 10u);
}

TEST(FlowTable, CapacityStaysBoundedUnderChurn) {
  FlowTable table{16};
  const Labels labels{1, 1};
  // ~11 live entries forever; 50K insert+erase cycles.  Capacity must
  // converge, not double on every tombstone-driven threshold crossing.
  for (std::uint32_t i = 0; i < 11; ++i) {
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }
  for (std::uint32_t round = 0; round < 50000; ++round) {
    const std::uint32_t born = 11 + round;
    table.insert(labels, make_tuple(born), FlowEntry{born, born, born});
    EXPECT_TRUE(table.erase(labels, make_tuple(born - 11)));
  }
  EXPECT_EQ(table.size(), 11u);
  // 11 live entries fit a 32-slot table at <= 35% live occupancy; allow
  // one extra doubling of slack but nothing unbounded.
  EXPECT_LE(table.capacity(), 64u);
  table.check_invariants();
}

TEST(FlowTable, Clear) {
  FlowTable table;
  table.insert(Labels{1, 1}, make_tuple(1), FlowEntry{});
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find(Labels{1, 1}, make_tuple(1)), nullptr);
}

// ---------------------------------------------------------- WeightedChoice

TEST(WeightedChoice, SingleElementAlwaysPicked)  {
  WeightedChoice choice;
  choice.add(42, 1.0);
  for (std::uint64_t s = 0; s < 100; ++s) {
    EXPECT_EQ(choice.pick(mix64(s)), 42u);
  }
}

TEST(WeightedChoice, RespectsWeights) {
  WeightedChoice choice;
  choice.add(1, 1.0);
  choice.add(2, 3.0);
  int count1 = 0;
  int count2 = 0;
  for (std::uint64_t s = 0; s < 40000; ++s) {
    const ElementId e = choice.pick(mix64(s));
    if (e == 1) ++count1;
    if (e == 2) ++count2;
  }
  EXPECT_NEAR(static_cast<double>(count2) / count1, 3.0, 0.3);
}

TEST(WeightedChoice, WeightOf) {
  WeightedChoice choice;
  choice.add(1, 1.5);
  choice.add(2, 2.5);
  EXPECT_DOUBLE_EQ(choice.weight_of(1), 1.5);
  EXPECT_DOUBLE_EQ(choice.weight_of(2), 2.5);
  EXPECT_DOUBLE_EQ(choice.weight_of(3), 0.0);
  EXPECT_DOUBLE_EQ(choice.total_weight(), 4.0);
}

TEST(RuleTable, InstallFindRemove) {
  RuleTable rules;
  LoadBalanceRule rule;
  rule.vnf_instances.add(5, 1.0);
  rules.install(Labels{1, 2}, std::move(rule));
  ASSERT_NE(rules.find(Labels{1, 2}), nullptr);
  EXPECT_EQ(rules.find(Labels{1, 3}), nullptr);
  rules.remove(Labels{1, 2});
  EXPECT_EQ(rules.find(Labels{1, 2}), nullptr);
}

// --------------------------------------------------------------- Forwarder

class ForwarderTest : public ::testing::Test {
 protected:
  static constexpr ElementId kVnf1 = 101;
  static constexpr ElementId kVnf2 = 102;
  static constexpr ElementId kNextFw = 201;
  static constexpr ElementId kPrevFw = 200;
  static constexpr Labels kLabels{7, 3};

  ForwarderTest() : fw_{1} {
    LoadBalanceRule rule;
    rule.vnf_instances.add(kVnf1, 1.0);
    rule.vnf_instances.add(kVnf2, 1.0);
    rule.next_forwarders.add(kNextFw, 1.0);
    rule.prev_forwarders.add(kPrevFw, 1.0);
    fw_.rules().install(kLabels, std::move(rule));
  }

  Packet wire_packet(std::uint32_t flow, Direction dir = Direction::kForward,
                     ElementId source = kPrevFw) {
    Packet p;
    p.flow = dir == Direction::kForward ? make_tuple(flow)
                                        : make_tuple(flow).reversed();
    p.labels = kLabels;
    p.direction = dir;
    p.arrival_source = source;
    return p;
  }

  Forwarder fw_;
};

TEST_F(ForwarderTest, FirstPacketPinsVnfInstance) {
  const Packet p = wire_packet(1);
  const ForwardAction action = fw_.process_from_wire(p);
  EXPECT_EQ(action.type, ActionType::kDeliverToAttached);
  EXPECT_TRUE(action.element == kVnf1 || action.element == kVnf2);
  EXPECT_EQ(fw_.counters().flow_misses, 1u);
}

TEST_F(ForwarderTest, FlowAffinity) {
  // All packets of a connection hit the same instance.
  const ForwardAction first = fw_.process_from_wire(wire_packet(1));
  for (int i = 0; i < 50; ++i) {
    const ForwardAction again = fw_.process_from_wire(wire_packet(1));
    EXPECT_EQ(again, first);
  }
  EXPECT_EQ(fw_.counters().flow_misses, 1u);
}

TEST_F(ForwarderTest, DifferentFlowsSpreadAcrossInstances) {
  std::set<ElementId> chosen;
  for (std::uint32_t f = 0; f < 64; ++f) {
    chosen.insert(fw_.process_from_wire(wire_packet(f)).element);
  }
  EXPECT_EQ(chosen.size(), 2u);   // both instances used
}

TEST_F(ForwarderTest, VnfReturnGoesToNextForwarder) {
  fw_.process_from_wire(wire_packet(1));
  Packet from_vnf = wire_packet(1);
  from_vnf.arrival_source = kVnf1;
  const ForwardAction action = fw_.process_from_attached(from_vnf);
  EXPECT_EQ(action.type, ActionType::kSendToForwarder);
  EXPECT_EQ(action.element, kNextFw);
}

TEST_F(ForwarderTest, SymmetricReturnUsesLearnedPrevHop) {
  // Forward packet arrives from kPrevFw and creates state.
  fw_.process_from_wire(wire_packet(1, Direction::kForward, kPrevFw));
  // Reverse packet from the wire is delivered to the pinned instance...
  const ForwardAction to_vnf =
      fw_.process_from_wire(wire_packet(1, Direction::kReverse, kNextFw));
  EXPECT_EQ(to_vnf.type, ActionType::kDeliverToAttached);
  // ...and after VNF processing returns to the learned previous hop.
  Packet reverse_from_vnf = wire_packet(1, Direction::kReverse);
  reverse_from_vnf.arrival_source = to_vnf.element;
  const ForwardAction back = fw_.process_from_attached(reverse_from_vnf);
  EXPECT_EQ(back.type, ActionType::kSendToForwarder);
  EXPECT_EQ(back.element, kPrevFw);
}

TEST_F(ForwarderTest, ReverseWithoutStateDrops) {
  const ForwardAction action =
      fw_.process_from_wire(wire_packet(9, Direction::kReverse));
  EXPECT_EQ(action.type, ActionType::kDrop);
  EXPECT_EQ(fw_.counters().drops, 1u);
}

TEST_F(ForwarderTest, UnknownLabelsDrop) {
  Packet p = wire_packet(1);
  p.labels = Labels{99, 99};
  EXPECT_EQ(fw_.process_from_wire(p).type, ActionType::kDrop);
}

TEST_F(ForwarderTest, IngressEdgeFirstPacketCreatesState) {
  // Packet injected by an attached ingress edge instance (id 300).
  Packet p = wire_packet(5);
  p.arrival_source = 300;
  const ForwardAction action = fw_.process_from_attached(p);
  EXPECT_EQ(action.type, ActionType::kSendToForwarder);
  EXPECT_EQ(action.element, kNextFw);
  // Reverse traffic for the flow is delivered back to the edge instance.
  const ForwardAction reverse =
      fw_.process_from_wire(wire_packet(5, Direction::kReverse, kNextFw));
  EXPECT_EQ(reverse.type, ActionType::kDeliverToAttached);
  EXPECT_EQ(reverse.element, 300u);
}

TEST_F(ForwarderTest, LabelReaffixForLegacyVnf) {
  fw_.register_attachment(kVnf1, kLabels);
  fw_.process_from_wire(wire_packet(1));
  // The legacy VNF returns the packet with labels stripped.
  Packet stripped = wire_packet(1);
  stripped.labels = Labels{};
  stripped.arrival_source = kVnf1;
  const ForwardAction action = fw_.process_from_attached(stripped);
  EXPECT_EQ(action.type, ActionType::kSendToForwarder);
  EXPECT_EQ(stripped.labels, kLabels);   // re-affixed in place
  EXPECT_EQ(fw_.counters().label_reaffixed, 1u);
}

TEST_F(ForwarderTest, CompleteFlowRemovesState) {
  fw_.process_from_wire(wire_packet(1));
  EXPECT_EQ(fw_.flow_table().size(), 1u);
  EXPECT_TRUE(fw_.complete_flow(kLabels, make_tuple(1)));
  EXPECT_EQ(fw_.flow_table().size(), 0u);
  // Next packet re-selects (miss again).
  fw_.process_from_wire(wire_packet(1));
  EXPECT_EQ(fw_.counters().flow_misses, 2u);
}

TEST_F(ForwarderTest, MakeBeforeBreakRuleChangeKeepsExistingFlows) {
  // Existing flow pinned to its instance...
  const ForwardAction before = fw_.process_from_wire(wire_packet(1));
  // ...then the Local Switchboard installs a new rule (e.g., new route)
  // with only a new instance.
  LoadBalanceRule new_rule;
  new_rule.vnf_instances.add(999, 1.0);
  new_rule.next_forwarders.add(kNextFw, 1.0);
  fw_.rules().install(kLabels, std::move(new_rule));
  // Old flow unaffected (flow affinity across route changes, Sec. 5.3)...
  EXPECT_EQ(fw_.process_from_wire(wire_packet(1)), before);
  // ...new flows use the new rule.
  EXPECT_EQ(fw_.process_from_wire(wire_packet(2)).element, 999u);
}

TEST_F(ForwarderTest, MutexReadModeMatchesEpochRead) {
  Forwarder mutex_fw{1};
  mutex_fw.set_read_mode(ReadMode::kMutexRead);
  ASSERT_EQ(mutex_fw.read_mode(), ReadMode::kMutexRead);
  LoadBalanceRule rule;
  rule.vnf_instances.add(kVnf1, 1.0);
  rule.vnf_instances.add(kVnf2, 1.0);
  rule.next_forwarders.add(kNextFw, 1.0);
  mutex_fw.rules().install(kLabels, std::move(rule));
  // Same seed (same id), same flows: actions must agree packet by packet.
  for (std::uint32_t f = 0; f < 200; ++f) {
    EXPECT_EQ(mutex_fw.process_from_wire(wire_packet(f)),
              fw_.process_from_wire(wire_packet(f)))
        << f;
  }
  const ForwarderCounters a = fw_.counters();
  const ForwarderCounters b = mutex_fw.counters();
  EXPECT_EQ(a.from_wire.value(), b.from_wire.value());
  EXPECT_EQ(a.flow_misses.value(), b.flow_misses.value());
  EXPECT_EQ(a.drops.value(), b.drops.value());
}

TEST_F(ForwarderTest, BatchPipelineMatchesPerPacketPath) {
  Forwarder single{1};
  LoadBalanceRule rule;
  rule.vnf_instances.add(kVnf1, 1.0);
  rule.vnf_instances.add(kVnf2, 1.0);
  rule.next_forwarders.add(kNextFw, 1.0);
  single.rules().install(kLabels, std::move(rule));

  // Mixed batch: first packets, repeats (hits), reverse packets with and
  // without state, unknown labels — every wire_resolve branch.
  std::vector<Packet> packets;
  for (std::uint32_t f = 0; f < 100; ++f) packets.push_back(wire_packet(f));
  for (std::uint32_t f = 0; f < 100; f += 2) {
    packets.push_back(wire_packet(f));
    packets.push_back(wire_packet(f, Direction::kReverse, kNextFw));
  }
  packets.push_back(wire_packet(500, Direction::kReverse));   // miss-drop
  Packet unknown = wire_packet(7);
  unknown.labels = Labels{99, 99};
  packets.push_back(unknown);

  std::vector<ForwardAction> batch_actions{packets.size()};
  const std::size_t delivered = fw_.process_batch(packets, batch_actions);
  std::size_t single_delivered = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const ForwardAction expect = single.process_from_wire(packets[i]);
    EXPECT_EQ(batch_actions[i], expect) << i;
    if (expect.type != ActionType::kDrop) ++single_delivered;
  }
  EXPECT_EQ(delivered, single_delivered);

  // Byte-identical bookkeeping, not just actions.
  const ForwarderCounters a = fw_.counters();
  const ForwarderCounters b = single.counters();
  EXPECT_EQ(a.from_wire.value(), b.from_wire.value());
  EXPECT_EQ(a.flow_misses.value(), b.flow_misses.value());
  EXPECT_EQ(a.drops.value(), b.drops.value());
  const ShardedFlowTable::Stats sa = fw_.flow_table().stats();
  const ShardedFlowTable::Stats sb = single.flow_table().stats();
  EXPECT_EQ(sa.finds, sb.finds);
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.inserts, sb.inserts);
  EXPECT_EQ(fw_.flow_table().size(), single.flow_table().size());
}

// ------------------------------------------------- annotation mode (§15)

TEST_F(ForwarderTest, AnnotationAffixedOnFirstPacketAndHonoured) {
  Packet p = wire_packet(1);
  EXPECT_EQ(p.steering.route_epoch, kNoRouteEpoch);
  const ForwardAction first = fw_.process_annotated(p);
  EXPECT_EQ(first.type, ActionType::kDeliverToAttached);
  // The affix: pinning + current route epoch now ride in the packet.
  EXPECT_EQ(p.steering.route_epoch, fw_.route_epoch());
  EXPECT_EQ(p.steering.pinning.vnf_instance, first.element);
  EXPECT_EQ(p.steering.pinning.next_forwarder, kNextFw);
  EXPECT_EQ(fw_.counters().flow_misses, 1u);

  // Subsequent packets carrying the annotation touch no per-flow state:
  // no additional misses, no flow-table entry ever created.
  const ForwardAction again = fw_.process_annotated(p);
  EXPECT_EQ(again, first);
  EXPECT_EQ(fw_.counters().flow_misses, 1u);
  EXPECT_EQ(fw_.flow_table().size(), 0u);
}

TEST_F(ForwarderTest, AnnotationPickEqualsTableModePick) {
  // The annotation a flow gets equals the pinning table mode stores:
  // both are the same pure function of (forwarder seed, flow key).
  Forwarder table_fw{1};
  LoadBalanceRule rule;
  rule.vnf_instances.add(kVnf1, 1.0);
  rule.vnf_instances.add(kVnf2, 1.0);
  rule.next_forwarders.add(kNextFw, 1.0);
  table_fw.rules().install(kLabels, std::move(rule));
  for (std::uint32_t f = 0; f < 200; ++f) {
    Packet p = wire_packet(f);
    const ForwardAction annotated = fw_.process_annotated(p);
    const ForwardAction table = table_fw.process_from_wire(wire_packet(f));
    EXPECT_EQ(annotated, table) << f;
    const auto entry = table_fw.flow_table().find(kLabels, make_tuple(f));
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(p.steering.pinning, *entry) << f;
  }
}

TEST_F(ForwarderTest, StaleAnnotationIsRederivedAgainstNewEpoch) {
  Packet p = wire_packet(1);
  (void)fw_.process_annotated(p);
  const std::uint32_t old_epoch = p.steering.route_epoch;

  // A route update bumps the rule-table version: the annotation is stale.
  LoadBalanceRule new_rule;
  new_rule.vnf_instances.add(999, 1.0);
  new_rule.next_forwarders.add(kNextFw, 1.0);
  fw_.rules().install(kLabels, std::move(new_rule));
  EXPECT_NE(fw_.route_epoch(), old_epoch);

  const ForwardAction repicked = fw_.process_annotated(p);
  EXPECT_EQ(repicked.type, ActionType::kDeliverToAttached);
  EXPECT_EQ(repicked.element, 999u);   // re-derived from the new rule
  EXPECT_EQ(p.steering.route_epoch, fw_.route_epoch());
  EXPECT_EQ(fw_.counters().flow_misses, 2u);
}

TEST_F(ForwarderTest, AnnotationReverseWithoutAffixDrops) {
  // Mirrors the table modes' unknown-reverse-flow drop.
  Packet p = wire_packet(9, Direction::kReverse);
  EXPECT_EQ(fw_.process_annotated(p).type, ActionType::kDrop);
  EXPECT_EQ(fw_.counters().drops, 1u);
}

TEST_F(ForwarderTest, AnnotatedBatchMatchesPerPacket) {
  std::vector<Packet> batch;
  for (std::uint32_t f = 0; f < 100; ++f) batch.push_back(wire_packet(f));
  std::vector<ForwardAction> first_pass{batch.size()};
  EXPECT_EQ(fw_.process_batch_annotated(batch, first_pass), batch.size());
  EXPECT_EQ(fw_.counters().flow_misses, 100u);   // every packet affixed

  // The batch was annotated in place: a second pass is pure fast path —
  // same actions, no new misses, still zero per-flow table state.
  std::vector<ForwardAction> second_pass{batch.size()};
  EXPECT_EQ(fw_.process_batch_annotated(batch, second_pass), batch.size());
  EXPECT_EQ(fw_.counters().flow_misses, 100u);
  EXPECT_EQ(fw_.flow_table().size(), 0u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(first_pass[i], second_pass[i]) << i;
  }

  // And the batch path agrees with per-packet process_annotated.
  Forwarder reference{1};
  LoadBalanceRule rule;
  rule.vnf_instances.add(kVnf1, 1.0);
  rule.vnf_instances.add(kVnf2, 1.0);
  rule.next_forwarders.add(kNextFw, 1.0);
  reference.rules().install(kLabels, std::move(rule));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Packet p = wire_packet(static_cast<std::uint32_t>(i));
    EXPECT_EQ(first_pass[i], reference.process_annotated(p)) << i;
  }
}

// ------------------------------------------------------------ OvsForwarder

TEST(OvsForwarder, BridgeIsDeterministic) {
  OvsForwarder a{OvsMode::kBridge};
  OvsForwarder b{OvsMode::kBridge};
  const auto packets = make_packet_batch({.flow_count = 10}, 100);
  for (const Packet& p : packets) {
    EXPECT_EQ(a.process(p), b.process(p));
  }
}

TEST(OvsForwarder, AffinityLearnsRulesPerFlow) {
  OvsForwarder ovs{OvsMode::kLabelsAffinity};
  const auto packets = make_packet_batch({.flow_count = 10}, 200);
  for (const Packet& p : packets) ovs.process(p);
  // 2 rules per flow (forward + reverse learn).
  EXPECT_EQ(ovs.learned_rules(), 20u);
}

TEST(OvsForwarder, AffinityKeepsPortStable) {
  OvsForwarder ovs{OvsMode::kLabelsAffinity};
  PacketStream stream{{.flow_count = 4}};
  std::uint32_t first_ports[4];
  for (int i = 0; i < 4; ++i) first_ports[i] = ovs.process(stream.next());
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(ovs.process(stream.next()), first_ports[i]);
    }
  }
}

TEST(OvsForwarder, LabelsModeDoesHeaderWork) {
  OvsForwarder ovs{OvsMode::kLabels};
  const auto packets = make_packet_batch({.flow_count = 5}, 50);
  for (const Packet& p : packets) ovs.process(p);
  EXPECT_GT(ovs.work_digest(), 0u);
}

// -------------------------------------------------------------- TrafficGen

TEST(TrafficGen, RoundRobinAcrossFlows) {
  PacketStream stream{{.flow_count = 3}};
  const Packet a = stream.next();
  const Packet b = stream.next();
  const Packet c = stream.next();
  const Packet a2 = stream.next();
  EXPECT_NE(a.flow, b.flow);
  EXPECT_NE(b.flow, c.flow);
  EXPECT_EQ(a.flow, a2.flow);
}

TEST(TrafficGen, DistinctFlowsHaveDistinctTuples) {
  PacketStream stream{{.flow_count = 1000}};
  std::set<std::uint64_t> hashes;
  for (std::uint32_t f = 0; f < 1000; ++f) {
    hashes.insert(flow_hash(Labels{1, 1}, stream.flow_tuple(f)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(TrafficGen, ReverseFractionApproximate) {
  TrafficGenConfig config;
  config.flow_count = 10;
  config.reverse_fraction = 0.3;
  const auto packets = make_packet_batch(config, 10000);
  int reverse = 0;
  for (const Packet& p : packets) {
    if (p.direction == Direction::kReverse) ++reverse;
  }
  EXPECT_NEAR(reverse / 10000.0, 0.3, 0.03);
}

TEST(TrafficGen, DeterministicForSeed) {
  const auto a = make_packet_batch({.flow_count = 7, .seed = 3}, 100);
  const auto b = make_packet_batch({.flow_count = 7, .seed = 3}, 100);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].flow, b[i].flow);
    EXPECT_EQ(a[i].direction, b[i].direction);
  }
}

}  // namespace
}  // namespace switchboard::dataplane
