#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "lp/mip.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace switchboard::lp {
namespace {

// ----------------------------------------------------------------- Problem

TEST(Problem, MergesDuplicateTerms) {
  Problem p;
  const VarIndex x = p.add_variable(1.0);
  p.add_constraint(Relation::kLessEqual, 5.0, {{x, 2.0}, {x, 3.0}});
  ASSERT_EQ(p.constraints().size(), 1u);
  ASSERT_EQ(p.constraints()[0].terms.size(), 1u);
  EXPECT_DOUBLE_EQ(p.constraints()[0].terms[0].coeff, 5.0);
}

TEST(Problem, DropsZeroCoefficients) {
  Problem p;
  const VarIndex x = p.add_variable(1.0);
  const VarIndex y = p.add_variable(1.0);
  p.add_constraint(Relation::kLessEqual, 5.0, {{x, 2.0}, {y, 1.0}, {y, -1.0}});
  EXPECT_EQ(p.constraints()[0].terms.size(), 1u);
}

// ----------------------------------------------------------------- Simplex

TEST(Simplex, SimpleMaximization) {
  // max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6  ->  x=4, y=0, obj=12
  Problem p{Sense::kMaximize};
  const VarIndex x = p.add_variable(3.0);
  const VarIndex y = p.add_variable(2.0);
  p.add_constraint(Relation::kLessEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  p.add_constraint(Relation::kLessEqual, 6.0, {{x, 1.0}, {y, 3.0}});
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 12.0, 1e-6);
  EXPECT_NEAR(s.values[x], 4.0, 1e-6);
  EXPECT_NEAR(s.values[y], 0.0, 1e-6);
}

TEST(Simplex, SimpleMinimizationWithGreaterEqual) {
  // min 2x + 3y  s.t.  x + y >= 10, x >= 2  ->  x=10 (cheaper), y=0, obj=20
  Problem p{Sense::kMinimize};
  const VarIndex x = p.add_variable(2.0);
  const VarIndex y = p.add_variable(3.0);
  p.add_constraint(Relation::kGreaterEqual, 10.0, {{x, 1.0}, {y, 1.0}});
  p.add_constraint(Relation::kGreaterEqual, 2.0, {{x, 1.0}});
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 20.0, 1e-6);
  EXPECT_NEAR(s.values[x], 10.0, 1e-6);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y  s.t.  x + y = 5, x - y = 1  ->  x=3, y=2
  Problem p;
  const VarIndex x = p.add_variable(1.0);
  const VarIndex y = p.add_variable(1.0);
  p.add_constraint(Relation::kEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  p.add_constraint(Relation::kEqual, 1.0, {{x, 1.0}, {y, -1.0}});
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[x], 3.0, 1e-6);
  EXPECT_NEAR(s.values[y], 2.0, 1e-6);
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible) {
  Problem p;
  const VarIndex x = p.add_variable(1.0);
  p.add_constraint(Relation::kLessEqual, 1.0, {{x, 1.0}});
  p.add_constraint(Relation::kGreaterEqual, 2.0, {{x, 1.0}});
  const Solution s = solve(p);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Problem p{Sense::kMaximize};
  const VarIndex x = p.add_variable(1.0);
  p.add_constraint(Relation::kGreaterEqual, 0.0, {{x, 1.0}});
  const Solution s = solve(p);
  EXPECT_EQ(s.status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -2 with b < 0 exercises row flipping.
  // min x + y  s.t.  x - y <= -2  ->  y >= x + 2, best x=0,y=2.
  Problem p;
  const VarIndex x = p.add_variable(1.0);
  const VarIndex y = p.add_variable(1.0);
  p.add_constraint(Relation::kLessEqual, -2.0, {{x, 1.0}, {y, -1.0}});
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
  EXPECT_NEAR(s.values[y], 2.0, 1e-6);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic cycling-prone instance (Beale); Bland fallback must terminate.
  Problem p{Sense::kMinimize};
  const VarIndex x1 = p.add_variable(-0.75);
  const VarIndex x2 = p.add_variable(150.0);
  const VarIndex x3 = p.add_variable(-0.02);
  const VarIndex x4 = p.add_variable(6.0);
  p.add_constraint(Relation::kLessEqual, 0.0,
                   {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}});
  p.add_constraint(Relation::kLessEqual, 0.0,
                   {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}});
  p.add_constraint(Relation::kLessEqual, 1.0, {{x3, 1.0}});
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -0.05, 1e-6);
}

TEST(Simplex, TransportationProblem) {
  // 2 sources (supply 20, 30) x 3 sinks (demand 10, 25, 15), known optimum.
  Problem p;
  const double cost[2][3] = {{2, 4, 5}, {3, 1, 7}};
  VarIndex x[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) x[i][j] = p.add_variable(cost[i][j]);
  }
  p.add_constraint(Relation::kLessEqual, 20.0,
                   {{x[0][0], 1}, {x[0][1], 1}, {x[0][2], 1}});
  p.add_constraint(Relation::kLessEqual, 30.0,
                   {{x[1][0], 1}, {x[1][1], 1}, {x[1][2], 1}});
  p.add_constraint(Relation::kEqual, 10.0, {{x[0][0], 1}, {x[1][0], 1}});
  p.add_constraint(Relation::kEqual, 25.0, {{x[0][1], 1}, {x[1][1], 1}});
  p.add_constraint(Relation::kEqual, 15.0, {{x[0][2], 1}, {x[1][2], 1}});
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  // Optimal: s1 ships 5 to d1 (10) and 15 to d3 (75); s2 ships 5 to d1
  // (15) and 25 to d2 (25).  Total 125.
  EXPECT_NEAR(s.objective, 125.0, 1e-6);
}

TEST(Simplex, RandomFeasibilityProperty) {
  // Random LPs: whenever the solver claims optimal, the solution must
  // satisfy every constraint and be non-negative.
  Rng rng{2024};
  for (int trial = 0; trial < 30; ++trial) {
    Problem p{trial % 2 == 0 ? Sense::kMinimize : Sense::kMaximize};
    const int nvars = static_cast<int>(rng.uniform_int(2, 8));
    const int ncons = static_cast<int>(rng.uniform_int(2, 8));
    for (int v = 0; v < nvars; ++v) {
      p.add_variable(rng.uniform(-5.0, 5.0));
    }
    for (int c = 0; c < ncons; ++c) {
      std::vector<Term> terms;
      for (int v = 0; v < nvars; ++v) {
        if (rng.bernoulli(0.7)) {
          terms.push_back({static_cast<VarIndex>(v), rng.uniform(-3.0, 3.0)});
        }
      }
      if (terms.empty()) terms.push_back({0, 1.0});
      // Mostly <= with positive rhs keeps many instances feasible/bounded.
      p.add_constraint(Relation::kLessEqual, rng.uniform(0.5, 20.0),
                       std::move(terms));
    }
    const Solution s = solve(p);
    if (!s.optimal()) continue;
    for (const auto& con : p.constraints()) {
      double lhs = 0.0;
      for (const Term& t : con.terms) lhs += t.coeff * s.values[t.var];
      EXPECT_LE(lhs, con.rhs + 1e-6);
    }
    for (const double v : s.values) EXPECT_GE(v, -1e-9);
  }
}

TEST(Simplex, EmptyProblemIsOptimal) {
  Problem p;
  const Solution s = solve(p);
  EXPECT_TRUE(s.optimal());
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(Simplex, RedundantEqualityRows) {
  // Two identical equality rows: phase 1 leaves one artificial basic at
  // zero in a redundant row; solver must still find the optimum.
  Problem p;
  const VarIndex x = p.add_variable(1.0);
  const VarIndex y = p.add_variable(2.0);
  p.add_constraint(Relation::kEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  p.add_constraint(Relation::kEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
  EXPECT_NEAR(s.values[x], 4.0, 1e-6);
}

// --------------------------------------------------------------------- MIP

TEST(Mip, SimpleKnapsack) {
  // max 10a + 6b + 4c  s.t.  5a + 4b + 3c <= 8, binaries.
  Problem p{Sense::kMaximize};
  const VarIndex a = p.add_variable(10.0);
  const VarIndex b = p.add_variable(6.0);
  const VarIndex c = p.add_variable(4.0);
  p.add_constraint(Relation::kLessEqual, 8.0, {{a, 5.0}, {b, 4.0}, {c, 3.0}});
  for (const VarIndex v : {a, b, c}) {
    p.add_constraint(Relation::kLessEqual, 1.0, {{v, 1.0}});
  }
  const MipSolution s = solve_mip(p, {a, b, c});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 14.0, 1e-6);   // a + c
  EXPECT_NEAR(s.values[a], 1.0, 1e-9);
  EXPECT_NEAR(s.values[b], 0.0, 1e-9);
  EXPECT_NEAR(s.values[c], 1.0, 1e-9);
}

TEST(Mip, InfeasibleBinary) {
  Problem p;
  const VarIndex a = p.add_variable(1.0);
  p.add_constraint(Relation::kGreaterEqual, 0.5, {{a, 1.0}});
  p.add_constraint(Relation::kLessEqual, 0.6, {{a, 1.0}});
  const MipSolution s = solve_mip(p, {a});
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(Mip, MixedIntegerAndContinuous) {
  // max 5w + x  s.t.  x <= 10w (big-M link), x <= 7, w binary.
  Problem p{Sense::kMaximize};
  const VarIndex w = p.add_variable(5.0);
  const VarIndex x = p.add_variable(1.0);
  p.add_constraint(Relation::kLessEqual, 0.0, {{x, 1.0}, {w, -10.0}});
  p.add_constraint(Relation::kLessEqual, 7.0, {{x, 1.0}});
  p.add_constraint(Relation::kLessEqual, 1.0, {{w, 1.0}});
  const MipSolution s = solve_mip(p, {w});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 12.0, 1e-6);
  EXPECT_NEAR(s.values[w], 1.0, 1e-9);
  EXPECT_NEAR(s.values[x], 7.0, 1e-6);
}

TEST(Mip, FacilityLocationSmall) {
  // 2 facilities (open cost 3, 2), 3 clients; serve each client from an
  // open facility; minimize open + service cost.
  Problem p{Sense::kMinimize};
  const VarIndex f0 = p.add_variable(3.0, "open0");
  const VarIndex f1 = p.add_variable(2.0, "open1");
  const double service[2][3] = {{1, 2, 3}, {3, 1, 1}};
  VarIndex y[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      y[i][j] = p.add_variable(service[i][j]);
    }
  }
  for (int j = 0; j < 3; ++j) {
    p.add_constraint(Relation::kEqual, 1.0, {{y[0][j], 1.0}, {y[1][j], 1.0}});
    for (int i = 0; i < 2; ++i) {
      const VarIndex f = i == 0 ? f0 : f1;
      p.add_constraint(Relation::kLessEqual, 0.0, {{y[i][j], 1.0}, {f, -1.0}});
    }
  }
  for (const VarIndex f : {f0, f1}) {
    p.add_constraint(Relation::kLessEqual, 1.0, {{f, 1.0}});
  }
  const MipSolution s = solve_mip(p, {f0, f1});
  ASSERT_TRUE(s.optimal());
  // Opening only f1 costs 2 + (3+1+1) = 7; only f0 costs 3 + 6 = 9;
  // both costs 5 + (1+1+1) = 8.  Optimal = 7.
  EXPECT_NEAR(s.objective, 7.0, 1e-6);
  EXPECT_NEAR(s.values[f1], 1.0, 1e-9);
  EXPECT_NEAR(s.values[f0], 0.0, 1e-9);
}

// -------------------------------------------------- bounds and warm starts

TEST(SimplexBounds, UpperBoundsWithoutRows) {
  // max x + 2y  s.t.  x + y <= 10, x <= 3, y <= 4 (as bounds)
  // -> x=3, y=4, obj=11; neither bound adds a constraint row.
  Problem p{Sense::kMaximize};
  const VarIndex x = p.add_variable(1.0);
  const VarIndex y = p.add_variable(2.0);
  p.set_upper_bound(x, 3.0);
  p.set_upper_bound(y, 4.0);
  p.add_constraint(Relation::kLessEqual, 10.0, {{x, 1.0}, {y, 1.0}});
  ASSERT_EQ(p.constraint_count(), 1u);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 11.0, 1e-6);
  EXPECT_NEAR(s.values[x], 3.0, 1e-6);
  EXPECT_NEAR(s.values[y], 4.0, 1e-6);
}

TEST(SimplexBounds, AllVariablesEndAtUpperBound) {
  // max x + y with x <= 2, y <= 5 and one slack row: both variables end
  // nonbasic at their upper bounds (pure bound-flip solve, no pivots
  // required to move them).
  Problem p{Sense::kMaximize};
  const VarIndex x = p.add_variable(1.0);
  const VarIndex y = p.add_variable(1.0);
  p.set_upper_bound(x, 2.0);
  p.set_upper_bound(y, 5.0);
  p.add_constraint(Relation::kLessEqual, 100.0, {{x, 1.0}, {y, 1.0}});
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 7.0, 1e-9);
  EXPECT_EQ(s.basis.variables[x], VarStatus::kAtUpper);
  EXPECT_EQ(s.basis.variables[y], VarStatus::kAtUpper);
  EXPECT_GE(s.stats.bound_flips, 2u);
}

TEST(SimplexBounds, GeneralLowerBounds) {
  // min x + y  s.t.  x + y >= 4, x in [1, 3], y in [2, 10] -> obj 4 at
  // a point with x >= 1, y >= 2.
  Problem p{Sense::kMinimize};
  const VarIndex x = p.add_variable(1.0);
  const VarIndex y = p.add_variable(1.0);
  p.set_bounds(x, 1.0, 3.0);
  p.set_bounds(y, 2.0, 10.0);
  p.add_constraint(Relation::kGreaterEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
  EXPECT_GE(s.values[x], 1.0 - 1e-9);
  EXPECT_GE(s.values[y], 2.0 - 1e-9);
}

TEST(SimplexBounds, FixedVariableViaEqualBounds) {
  // x fixed at 2 by bounds; max x + y, y <= 3.
  Problem p{Sense::kMaximize};
  const VarIndex x = p.add_variable(1.0);
  const VarIndex y = p.add_variable(1.0);
  p.set_bounds(x, 2.0, 2.0);
  p.set_upper_bound(y, 3.0);
  p.add_constraint(Relation::kLessEqual, 10.0, {{x, 1.0}, {y, 1.0}});
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
}

TEST(SimplexBounds, InfeasibleThroughBounds) {
  // x <= 2 (bound) but a row demands x >= 5.
  Problem p{Sense::kMinimize};
  const VarIndex x = p.add_variable(1.0);
  p.set_upper_bound(x, 2.0);
  p.add_constraint(Relation::kGreaterEqual, 5.0, {{x, 1.0}});
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(SimplexBounds, UnboundedAboveWithoutUpperBound) {
  Problem p{Sense::kMaximize};
  const VarIndex x = p.add_variable(1.0);
  const VarIndex y = p.add_variable(0.0);
  p.set_upper_bound(y, 1.0);
  p.add_constraint(Relation::kGreaterEqual, 0.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(SimplexWarmStart, OptimalBasisResolvesWithoutPivots) {
  // Re-solving from the final basis must skip phase 1 and take zero
  // phase-2 pivots (the basis is already optimal).
  Problem p{Sense::kMaximize};
  const VarIndex x = p.add_variable(3.0);
  const VarIndex y = p.add_variable(2.0);
  p.add_constraint(Relation::kLessEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  p.add_constraint(Relation::kLessEqual, 6.0, {{x, 1.0}, {y, 3.0}});
  const Solution cold = solve(p);
  ASSERT_TRUE(cold.optimal());

  const Solution warm = solve_simplex(p, {}, &cold.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_TRUE(warm.stats.warm_started);
  EXPECT_TRUE(warm.stats.phase1_skipped);
  EXPECT_EQ(warm.stats.iterations(), 0u);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  EXPECT_EQ(warm.basis.variables, cold.basis.variables);
  EXPECT_EQ(warm.basis.slacks, cold.basis.slacks);
}

TEST(SimplexWarmStart, RepairsInfeasibleBasisAfterRhsChange) {
  // Tighten a rhs so the old optimal basis turns primal infeasible: the
  // bounded phase 1 must repair it and land on the new optimum.
  Problem p{Sense::kMaximize};
  const VarIndex x = p.add_variable(3.0);
  const VarIndex y = p.add_variable(2.0);
  p.add_constraint(Relation::kLessEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  p.add_constraint(Relation::kLessEqual, 6.0, {{x, 1.0}, {y, 3.0}});
  const Solution cold = solve(p);
  ASSERT_TRUE(cold.optimal());

  Problem tightened{Sense::kMaximize};
  const VarIndex x2 = tightened.add_variable(3.0);
  const VarIndex y2 = tightened.add_variable(2.0);
  tightened.add_constraint(Relation::kLessEqual, 2.0, {{x2, 1.0}, {y2, 1.0}});
  tightened.add_constraint(Relation::kLessEqual, 6.0, {{x2, 1.0}, {y2, 3.0}});
  const Solution warm = solve_simplex(tightened, {}, &cold.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_TRUE(warm.stats.warm_started);
  const Solution fresh = solve(tightened);
  EXPECT_EQ(warm.status, fresh.status);
  EXPECT_NEAR(warm.objective, fresh.objective, 1e-6);
}

TEST(SimplexWarmStart, MismatchedBasisFallsBackToCold) {
  Problem p{Sense::kMaximize};
  const VarIndex x = p.add_variable(1.0);
  p.add_constraint(Relation::kLessEqual, 1.0, {{x, 1.0}});
  Basis wrong;
  wrong.variables = {VarStatus::kBasic, VarStatus::kBasic};   // wrong size
  wrong.slacks = {VarStatus::kAtLower};
  const Solution s = solve_simplex(p, {}, &wrong);
  ASSERT_TRUE(s.optimal());
  EXPECT_FALSE(s.stats.warm_started);
  EXPECT_NEAR(s.objective, 1.0, 1e-9);
}

TEST(SimplexWarmStart, RepeatedSolvesAreBitIdentical) {
  Problem p{Sense::kMaximize};
  const VarIndex x = p.add_variable(3.0);
  const VarIndex y = p.add_variable(2.0);
  p.set_upper_bound(y, 1.5);
  p.add_constraint(Relation::kLessEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  p.add_constraint(Relation::kLessEqual, 6.0, {{x, 1.0}, {y, 3.0}});
  const Solution a = solve(p);
  const Solution b = solve(p);
  ASSERT_TRUE(a.optimal());
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.objective, b.objective);    // exact, not NEAR
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.basis.variables, b.basis.variables);
  EXPECT_EQ(a.basis.slacks, b.basis.slacks);
  EXPECT_EQ(a.stats.iterations(), b.stats.iterations());
}

// ------------------------------------------------- dense reference parity

TEST(DenseReference, AgreesOnBoundedProblem) {
  Problem p{Sense::kMaximize};
  const VarIndex x = p.add_variable(1.0);
  const VarIndex y = p.add_variable(2.0);
  p.set_bounds(x, 0.5, 3.0);
  p.set_upper_bound(y, 4.0);
  p.add_constraint(Relation::kLessEqual, 6.0, {{x, 1.0}, {y, 1.0}});
  const Solution sparse = solve(p);
  SimplexOptions dense_options;
  dense_options.algorithm = SimplexAlgorithm::kDenseReference;
  const Solution dense = solve(p, dense_options);
  ASSERT_EQ(sparse.status, dense.status);
  ASSERT_TRUE(sparse.optimal());
  EXPECT_NEAR(sparse.objective, dense.objective, 1e-6);
  EXPECT_TRUE(dense.basis.empty());   // reference mode exposes no basis
}

TEST(DenseReference, AgreesOnInfeasibleAndUnbounded) {
  Problem infeasible{Sense::kMinimize};
  const VarIndex x = infeasible.add_variable(1.0);
  infeasible.set_upper_bound(x, 2.0);
  infeasible.add_constraint(Relation::kGreaterEqual, 5.0, {{x, 1.0}});
  SimplexOptions dense_options;
  dense_options.algorithm = SimplexAlgorithm::kDenseReference;
  EXPECT_EQ(solve(infeasible, dense_options).status,
            SolveStatus::kInfeasible);

  Problem unbounded{Sense::kMaximize};
  unbounded.add_variable(1.0);
  EXPECT_EQ(solve(unbounded, dense_options).status, SolveStatus::kUnbounded);
  EXPECT_EQ(solve(unbounded).status, SolveStatus::kUnbounded);
}

TEST(Mip, WarmStartsChildNodesFromParentBasis) {
  // A knapsack with a fractional relaxation forces branching; every child
  // node's LP should warm-start from its parent's basis.
  Problem p{Sense::kMaximize};
  const VarIndex a = p.add_variable(10.0);
  const VarIndex b = p.add_variable(13.0);
  const VarIndex c = p.add_variable(7.0);
  p.add_constraint(Relation::kLessEqual, 10.0,
                   {{a, 5.0}, {b, 7.0}, {c, 4.0}});
  const MipSolution s = solve_mip(p, {a, b, c});
  ASSERT_TRUE(s.optimal());
  EXPECT_GT(s.nodes_explored, 1u);
  EXPECT_GT(s.warm_started_nodes, 0u);
  EXPECT_GT(s.lp_iterations, 0u);
}

TEST(Mip, HonorsAlreadyIntegralRelaxation) {
  Problem p{Sense::kMaximize};
  const VarIndex a = p.add_variable(1.0);
  p.add_constraint(Relation::kLessEqual, 1.0, {{a, 1.0}});
  const MipSolution s = solve_mip(p, {a});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 1.0, 1e-9);
  EXPECT_EQ(s.nodes_explored, 1u);
}

}  // namespace
}  // namespace switchboard::lp
