// End-to-end integration tests: many chains through the full middleware
// (controllers + bus + data plane), service sharing, VNF-less chains,
// same-site chains, and control-plane timing behavior.
#include <gtest/gtest.h>

#include <set>

#include "switchboard/switchboard.hpp"

namespace switchboard {
namespace {

using control::ChainSpec;
using core::Middleware;

dataplane::FiveTuple tuple(std::uint32_t i) {
  return dataplane::FiveTuple{0x0A010000u + i, 0xC0A80001u,
                              static_cast<std::uint16_t>(2000 + i), 443, 6};
}

/// Backbone with sites everywhere and two VNFs spread around.
model::NetworkModel make_backbone(std::uint64_t seed = 5) {
  model::ScenarioParams params;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;
  params.vnf_count = 0;
  params.chain_count = 0;
  params.seed = seed;
  model::NetworkModel m = model::make_scenario(params);
  const VnfId fw = m.add_vnf("firewall", 1.0);
  const VnfId nat = m.add_vnf("nat", 1.0);
  for (std::size_t s = 0; s < m.sites().size(); s += 2) {
    m.deploy_vnf(fw, m.sites()[s].id, 100.0);
  }
  for (std::size_t s = 1; s < m.sites().size(); s += 2) {
    m.deploy_vnf(nat, m.sites()[s].id, 100.0);
  }
  return m;
}

TEST(Integration, ManyChainsActivateAndCarryTraffic) {
  model::NetworkModel m = make_backbone();
  const VnfId fw = m.vnfs()[0].id;
  const VnfId nat = m.vnfs()[1].id;
  const std::size_t nodes = m.topology().node_count();

  Middleware mw{std::move(m)};
  const EdgeServiceId edge = mw.register_edge_service("vpn");

  Rng rng{99};
  std::vector<ChainId> chains;
  for (int c = 0; c < 8; ++c) {
    ChainSpec spec;
    spec.name = "chain" + std::to_string(c);
    spec.ingress_service = edge;
    spec.egress_service = edge;
    spec.ingress_node = NodeId{static_cast<NodeId::underlying_type>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1))};
    do {
      spec.egress_node = NodeId{static_cast<NodeId::underlying_type>(
          rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1))};
    } while (spec.egress_node == spec.ingress_node);
    spec.vnfs = c % 2 == 0 ? std::vector<VnfId>{fw, nat}
                           : std::vector<VnfId>{fw};
    spec.forward_traffic = 1.0;
    const auto report = mw.create_chain(spec);
    ASSERT_TRUE(report.ok())
        << spec.name << ": " << report.error().to_string();
    chains.push_back(report->chain);
  }

  // Traffic on every chain: delivered, conformant (VNFs in spec order).
  auto& elements = mw.deployment().elements();
  for (std::size_t c = 0; c < chains.size(); ++c) {
    const auto walk =
        mw.send(chains[c], tuple(static_cast<std::uint32_t>(c)));
    ASSERT_TRUE(walk.delivered) << "chain " << c << ": " << walk.failure;
    const auto instances = walk.vnf_instances();
    const auto& spec_vnfs = mw.chain_record(chains[c]).spec.vnfs;
    ASSERT_EQ(instances.size(), spec_vnfs.size());
    for (std::size_t z = 0; z < instances.size(); ++z) {
      EXPECT_EQ(elements.info(instances[z]).vnf, spec_vnfs[z])
          << "chain " << c << " stage " << z;
    }
  }
}

TEST(Integration, VnfInstancesAreSharedAcrossChains) {
  // Two chains through the same VNF at the same site must reuse one
  // instance (the service-oriented design of Section 7.2).
  model::NetworkModel m{net::make_line_topology(3, 50.0, 5.0)};
  m.add_site(NodeId{0}, 100.0);
  const SiteId mid = m.add_site(NodeId{1}, 100.0);
  m.add_site(NodeId{2}, 100.0);
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, mid, 100.0);

  Middleware mw{std::move(m)};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  ChainSpec spec;
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{2};
  spec.vnfs = {fw};
  const auto chain_a = mw.create_chain(spec);
  ASSERT_TRUE(chain_a.ok());
  spec.ingress_node = NodeId{2};   // opposite direction
  spec.egress_node = NodeId{0};
  const auto chain_b = mw.create_chain(spec);
  ASSERT_TRUE(chain_b.ok());

  const auto walk_a = mw.send(chain_a->chain, tuple(1));
  const auto walk_b = mw.send(chain_b->chain, tuple(2));
  ASSERT_TRUE(walk_a.delivered) << walk_a.failure;
  ASSERT_TRUE(walk_b.delivered) << walk_b.failure;
  ASSERT_EQ(walk_a.vnf_instances().size(), 1u);
  EXPECT_EQ(walk_a.vnf_instances(), walk_b.vnf_instances())
      << "chains should share the firewall instance";
}

TEST(Integration, VnflessChainForwardsEdgeToEdge) {
  model::NetworkModel m{net::make_line_topology(3, 50.0, 5.0)};
  m.add_site(NodeId{0}, 100.0);
  m.add_site(NodeId{1}, 100.0);
  m.add_site(NodeId{2}, 100.0);

  Middleware mw{std::move(m)};
  const EdgeServiceId edge = mw.register_edge_service("lan");
  ChainSpec spec;
  spec.name = "default-chain";
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{2};
  const auto report = mw.create_chain(spec);
  ASSERT_TRUE(report.ok()) << report.error().to_string();

  const auto walk = mw.send(report->chain, tuple(3));
  ASSERT_TRUE(walk.delivered) << walk.failure;
  EXPECT_TRUE(walk.vnf_instances().empty());
  EXPECT_NEAR(walk.latency_ms, 10.0, 1e-6);   // two 5 ms hops, no VNF
  // Reverse works too.
  const auto reverse =
      mw.send(report->chain, tuple(3), dataplane::Direction::kReverse);
  EXPECT_TRUE(reverse.delivered) << reverse.failure;
}

TEST(Integration, SameSiteIngressAndEgress) {
  // The Fig. 3 demo shape: webcam and laptop behind the same CPE, VNF at
  // a remote site.
  net::Topology topo;
  const NodeId cpe = topo.add_node("cpe");
  const NodeId cloud = topo.add_node("cloud");
  topo.add_duplex_link(cpe, cloud, 50.0, 30.0);
  model::NetworkModel m{std::move(topo)};
  m.add_site(cpe, 10.0);
  const SiteId cloud_site = m.add_site(cloud, 100.0);
  const VnfId blur = m.add_vnf("face-blur", 1.0);
  m.deploy_vnf(blur, cloud_site, 50.0);

  Middleware mw{std::move(m)};
  const EdgeServiceId lan = mw.register_edge_service("lan");
  ChainSpec spec;
  spec.ingress_service = lan;
  spec.egress_service = lan;
  spec.ingress_node = cpe;
  spec.egress_node = cpe;
  spec.vnfs = {blur};
  const auto report = mw.create_chain(spec);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  const auto walk = mw.send(report->chain, tuple(4));
  ASSERT_TRUE(walk.delivered) << walk.failure;
  EXPECT_EQ(walk.vnf_instances().size(), 1u);
  // Round trip to the cloud and back: 60 ms + processing.
  EXPECT_GT(walk.latency_ms, 59.9);
}

TEST(Integration, UninvolvedSitesHostNoForwarders) {
  model::NetworkModel m{net::make_line_topology(5, 50.0, 5.0)};
  for (int i = 0; i < 5; ++i) {
    m.add_site(NodeId{static_cast<NodeId::underlying_type>(i)}, 100.0);
  }
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, SiteId{1}, 100.0);

  Middleware mw{std::move(m)};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  ChainSpec spec;
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{2};
  spec.vnfs = {fw};
  ASSERT_TRUE(mw.create_chain(spec).ok());

  // Sites 3 and 4 play no role: no data-plane elements materialize there.
  EXPECT_TRUE(mw.deployment().elements().forwarders_at(SiteId{3}).empty());
  EXPECT_TRUE(mw.deployment().elements().forwarders_at(SiteId{4}).empty());
  EXPECT_FALSE(mw.deployment().elements().forwarders_at(SiteId{1}).empty());
}

TEST(Integration, CreationLatencyScalesWithControlRtt) {
  auto run = [](sim::Duration rpc) {
    model::NetworkModel m{net::make_line_topology(3, 50.0, 5.0)};
    m.add_site(NodeId{0}, 100.0);
    const SiteId mid = m.add_site(NodeId{1}, 100.0);
    m.add_site(NodeId{2}, 100.0);
    const VnfId fw = m.add_vnf("fw", 1.0);
    m.deploy_vnf(fw, mid, 100.0);
    core::DeploymentConfig config;
    config.timings.controller_rpc = rpc;
    Middleware mw{std::move(m), config};
    const EdgeServiceId edge = mw.register_edge_service("vpn");
    ChainSpec spec;
    spec.ingress_service = edge;
    spec.egress_service = edge;
    spec.ingress_node = NodeId{0};
    spec.egress_node = NodeId{2};
    spec.vnfs = {fw};
    const auto report = mw.create_chain(spec);
    EXPECT_TRUE(report.ok());
    return report.ok() ? report->elapsed() : sim::Duration{0};
  };
  const sim::Duration fast = run(sim::from_ms(5.0));
  const sim::Duration slow = run(sim::from_ms(50.0));
  EXPECT_GT(slow, fast);
  // 2PC has several RPC rounds: +45 ms per one-way RPC should add well
  // over 100 ms end to end.
  EXPECT_GT(slow - fast, sim::from_ms(100.0));
}

TEST(Integration, BusCarriesBoundedControlState) {
  model::NetworkModel m = make_backbone();
  const VnfId fw = m.vnfs()[0].id;
  Middleware mw{std::move(m)};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  ChainSpec spec;
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{3};
  spec.vnfs = {fw};
  ASSERT_TRUE(mw.create_chain(spec).ok());
  const auto& stats = mw.deployment().bus().stats();
  EXPECT_GT(stats.published, 0u);
  EXPECT_EQ(stats.drops, 0u);
  // Route announcements replicate to all sites; instance/forwarder topics
  // only to subscribed sites.  A generous bound still catches broadcast
  // regressions (full mesh would be subscribers x messages).
  EXPECT_LT(stats.wide_area_messages,
            stats.published * mw.deployment().network_model().sites().size());
}

TEST(Integration, TrafficAfterRouteChangeStillConformant) {
  model::NetworkModel m = make_backbone(7);
  const VnfId fw = m.vnfs()[0].id;
  Middleware mw{std::move(m)};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  ChainSpec spec;
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{1};
  spec.egress_node = NodeId{5};
  spec.vnfs = {fw};
  spec.forward_traffic = 3.0;
  const auto created = mw.create_chain(spec);
  ASSERT_TRUE(created.ok());
  const auto added = mw.add_route(created->chain, {});
  ASSERT_TRUE(added.ok()) << added.error().to_string();

  auto& elements = mw.deployment().elements();
  for (std::uint32_t f = 0; f < 30; ++f) {
    const auto walk = mw.send(created->chain, tuple(100 + f));
    ASSERT_TRUE(walk.delivered) << walk.failure;
    const auto instances = walk.vnf_instances();
    ASSERT_EQ(instances.size(), 1u);
    EXPECT_EQ(elements.info(instances[0]).vnf, fw);
    // Symmetric return still holds after the route change.
    const auto reverse = mw.send(created->chain, tuple(100 + f),
                                 dataplane::Direction::kReverse);
    ASSERT_TRUE(reverse.delivered) << reverse.failure;
    EXPECT_EQ(reverse.vnf_instances(), instances);
  }
}

}  // namespace
}  // namespace switchboard
