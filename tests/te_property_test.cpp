// Property-based tests over randomized scenarios (parameterized on the
// scenario seed): invariants every traffic-engineering scheme must hold
// regardless of topology, catalog, and demand draws.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lp/mip.hpp"
#include "model/scenario.hpp"
#include "te/baselines.hpp"
#include "te/dp_routing.hpp"
#include "te/evaluator.hpp"
#include "te/lp_routing.hpp"
#include "te/te_engine.hpp"

namespace switchboard::te {
namespace {

model::ScenarioParams scenario_for_seed(std::uint64_t seed) {
  model::ScenarioParams params;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;
  params.vnf_count = 6;
  params.chain_count = 15;
  params.coverage = 0.5;
  params.total_chain_traffic = 200.0;
  params.site_capacity = 300.0;
  params.seed = seed;
  return params;
}

class TeSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, TeSeedProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(TeSeedProperty, DpNeverOverloadsAnyResource) {
  const model::NetworkModel m =
      model::make_scenario(scenario_for_seed(GetParam()));
  const DpResult dp = solve_dp_routing(m);
  const Loads loads = accumulate_loads(m, dp.routing);

  for (const net::Link& link : m.topology().links()) {
    const double budget = m.mlu_limit() * link.capacity -
                          m.background_traffic(link.id);
    EXPECT_LE(loads.link_load(link.id), std::max(0.0, budget) + 1e-6)
        << "link " << link.id.value();
  }
  for (const model::CloudSite& site : m.sites()) {
    EXPECT_LE(loads.site_load(site.id), site.compute_capacity + 1e-6);
  }
  for (const model::Vnf& vnf : m.vnfs()) {
    for (const model::VnfDeployment& dep : vnf.deployments) {
      EXPECT_LE(loads.vnf_site_load(vnf.id, dep.site), dep.capacity + 1e-6);
    }
  }
}

TEST_P(TeSeedProperty, DpStageFractionsAreConsistent) {
  const model::NetworkModel m =
      model::make_scenario(scenario_for_seed(GetParam()));
  const DpResult dp = solve_dp_routing(m);
  for (const model::Chain& chain : m.chains()) {
    const double admitted = dp.routing.carried_fraction(chain.id, 1);
    EXPECT_LE(admitted, 1.0 + 1e-9);
    // Every stage carries the same fraction (whole-route admission).
    for (std::size_t z = 2; z <= chain.stage_count(); ++z) {
      EXPECT_NEAR(dp.routing.carried_fraction(chain.id, z), admitted, 1e-9);
    }
  }
}

TEST_P(TeSeedProperty, LpMaxThroughputDominatesDp) {
  const model::NetworkModel m =
      model::make_scenario(scenario_for_seed(GetParam()));
  LpRoutingOptions options;
  options.objective = LpObjective::kMaxThroughput;
  const LpRoutingResult lp = solve_lp_routing(m, options);
  if (!lp.optimal()) GTEST_SKIP() << "LP did not solve";
  const DpResult dp = solve_dp_routing(m);
  const RoutingMetrics lp_metrics = evaluate(m, lp.routing);
  const RoutingMetrics dp_metrics = evaluate(m, dp.routing);
  // The LP optimum is an upper bound on any feasible scheme's throughput.
  EXPECT_GE(lp_metrics.feasible_throughput,
            dp_metrics.feasible_throughput - 1e-4);
}

TEST_P(TeSeedProperty, MinLatencyLpDominatesDpWhenBothRouteAll) {
  model::ScenarioParams params = scenario_for_seed(GetParam());
  params.total_chain_traffic = 50.0;   // light load: both should route all
  const model::NetworkModel m = model::make_scenario(params);
  const LpRoutingResult lp = solve_lp_routing(m, {});
  if (!lp.optimal()) GTEST_SKIP() << "LP infeasible";
  const DpResult dp = solve_dp_routing(m);
  if (dp.routed_volume < dp.demand_volume - 1e-6) {
    GTEST_SKIP() << "DP did not route everything";
  }
  const RoutingMetrics lp_metrics = evaluate(m, lp.routing);
  const RoutingMetrics dp_metrics = evaluate(m, dp.routing);
  EXPECT_LE(lp_metrics.mean_latency_ms, dp_metrics.mean_latency_ms + 1e-6);
  // The paper's headline: the DP heuristic lands close to the optimum.
  EXPECT_LE(dp_metrics.mean_latency_ms,
            2.0 * lp_metrics.mean_latency_ms + 1.0);
}

TEST_P(TeSeedProperty, AnycastCarriesAllDemand) {
  const model::NetworkModel m =
      model::make_scenario(scenario_for_seed(GetParam()));
  const ChainRouting routing = solve_anycast(m);
  for (const model::Chain& chain : m.chains()) {
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      EXPECT_NEAR(routing.carried_fraction(chain.id, z), 1.0, 1e-9);
      // ANYCAST never splits: one flow per stage.
      EXPECT_EQ(routing.flows(chain.id, z).size(), 1u);
    }
  }
}

TEST_P(TeSeedProperty, SchemesAreDeterministic) {
  const model::ScenarioParams params = scenario_for_seed(GetParam());
  const model::NetworkModel m1 = model::make_scenario(params);
  const model::NetworkModel m2 = model::make_scenario(params);
  const DpResult a = solve_dp_routing(m1);
  const DpResult b = solve_dp_routing(m2);
  EXPECT_DOUBLE_EQ(a.routed_volume, b.routed_volume);
  EXPECT_EQ(a.fully_routed_chains, b.fully_routed_chains);
}

/// Bit-exact comparison of two routings over every chain and stage: the
/// fast paths (cost cache, engine) promise identical solutions, not just
/// close ones.
void expect_identical_solution(const model::NetworkModel& m,
                               const ChainRouting& a, const ChainRouting& b) {
  for (const model::Chain& chain : m.chains()) {
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      const auto& fa = a.flows(chain.id, z);
      const auto& fb = b.flows(chain.id, z);
      ASSERT_EQ(fa.size(), fb.size())
          << "chain " << chain.id.value() << " stage " << z;
      for (std::size_t i = 0; i < fa.size(); ++i) {
        ASSERT_EQ(fa[i].src, fb[i].src);
        ASSERT_EQ(fa[i].dst, fb[i].dst);
        ASSERT_EQ(fa[i].fraction, fb[i].fraction)
            << "chain " << chain.id.value() << " stage " << z << " flow " << i;
      }
    }
  }
}

TEST_P(TeSeedProperty, CachedSolveIsBitIdentical) {
  const model::NetworkModel m =
      model::make_scenario(scenario_for_seed(GetParam()));
  const DpResult plain = solve_dp_routing(m);
  EdgeCostCache cache;
  DpScratch scratch;
  const DpResult cached = solve_dp_routing(m, {}, TeContext{&cache, &scratch});
  EXPECT_EQ(plain.routed_volume, cached.routed_volume);
  EXPECT_EQ(plain.demand_volume, cached.demand_volume);
  EXPECT_EQ(plain.fully_routed_chains, cached.fully_routed_chains);
  EXPECT_EQ(plain.unrouted_chains, cached.unrouted_chains);
  expect_identical_solution(m, plain.routing, cached.routing);
  // The cache must actually be exercised, or this test proves nothing.
  EXPECT_GT(cache.hits(), 0u);
}

TEST_P(TeSeedProperty, TeEngineSolveMatchesSolver) {
  const model::NetworkModel m =
      model::make_scenario(scenario_for_seed(GetParam()));
  const DpResult plain = solve_dp_routing(m);
  TeEngine engine{m};
  const DpResult& fast = engine.solve();
  EXPECT_EQ(plain.routed_volume, fast.routed_volume);
  EXPECT_EQ(plain.demand_volume, fast.demand_volume);
  EXPECT_EQ(plain.fully_routed_chains, fast.fully_routed_chains);
  EXPECT_EQ(plain.unrouted_chains, fast.unrouted_chains);
  expect_identical_solution(m, plain.routing, fast.routing);
  engine.check_invariants();
}

TEST_P(TeSeedProperty, IncrementalAddChainMatchesFullSolve) {
  model::NetworkModel m = model::make_scenario(scenario_for_seed(GetParam()));
  TeEngine engine{m};
  engine.solve();

  // Append one chain to the model and route it incrementally; a full
  // re-solve visits chains in id order, so the incremental result must be
  // identical bit for bit.
  model::Chain extra;
  const model::Chain& proto = m.chains().front();
  extra.name = "extra";
  extra.ingress = proto.ingress;
  extra.egress = proto.egress;
  extra.vnfs = proto.vnfs;
  extra.forward_traffic = proto.forward_traffic;
  extra.reverse_traffic = proto.reverse_traffic;
  const ChainId added = m.add_chain(std::move(extra));
  const double routed = engine.add_chain(added);
  EXPECT_GE(routed, 0.0);
  EXPECT_LE(routed, 1.0 + 1e-9);

  const DpResult full = solve_dp_routing(m);
  EXPECT_EQ(engine.result().routed_volume, full.routed_volume);
  EXPECT_EQ(engine.result().demand_volume, full.demand_volume);
  EXPECT_EQ(engine.result().fully_routed_chains, full.fully_routed_chains);
  EXPECT_EQ(engine.result().unrouted_chains, full.unrouted_chains);
  expect_identical_solution(m, engine.result().routing, full.routing);
  engine.check_invariants();
}

TEST_P(TeSeedProperty, OnehopNeverBeatsHolisticByMuch) {
  // ONEHOP shares SB-DP's cost function but is greedy per hop; it may tie
  // but should not meaningfully beat the holistic DP.
  model::ScenarioParams params = scenario_for_seed(GetParam());
  params.total_chain_traffic = 400.0;
  const model::NetworkModel m = model::make_scenario(params);
  const double full =
      evaluate(m, solve_dp_routing(m).routing).feasible_throughput;
  DpOptions one_hop;
  one_hop.per_hop = true;
  const double greedy =
      evaluate(m, solve_dp_routing(m, one_hop).routing).feasible_throughput;
  EXPECT_GE(full, 0.9 * greedy);
}

// ------------------------------------------------------- MIP vs brute force

class MipSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MipSeedProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST_P(MipSeedProperty, KnapsackMatchesExhaustiveSearch) {
  Rng rng{GetParam()};
  const int n = 8;
  std::vector<double> value(n);
  std::vector<double> weight(n);
  for (int i = 0; i < n; ++i) {
    value[i] = rng.uniform(1.0, 10.0);
    weight[i] = rng.uniform(1.0, 6.0);
  }
  const double budget = rng.uniform(6.0, 18.0);

  lp::Problem p{lp::Sense::kMaximize};
  std::vector<lp::VarIndex> vars;
  std::vector<lp::Term> budget_terms;
  for (int i = 0; i < n; ++i) {
    const lp::VarIndex v = p.add_variable(value[i]);
    p.add_constraint(lp::Relation::kLessEqual, 1.0, {{v, 1.0}});
    budget_terms.push_back({v, weight[i]});
    vars.push_back(v);
  }
  p.add_constraint(lp::Relation::kLessEqual, budget, std::move(budget_terms));
  const lp::MipSolution mip = lp::solve_mip(p, vars);
  ASSERT_TRUE(mip.optimal());

  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double total_weight = 0.0;
    double total_value = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        total_weight += weight[i];
        total_value += value[i];
      }
    }
    if (total_weight <= budget) best = std::max(best, total_value);
  }
  EXPECT_NEAR(mip.objective, best, 1e-6);
}

}  // namespace
}  // namespace switchboard::te
