#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace switchboard::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(milliseconds(3), 3000);
  EXPECT_EQ(seconds(2), 2'000'000);
  EXPECT_EQ(from_ms(1.5), 1500);
  EXPECT_DOUBLE_EQ(to_ms(2500), 2.5);
  EXPECT_DOUBLE_EQ(to_seconds(500'000), 0.5);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(30));
}

TEST(Simulator, SameTimestampFiresInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(milliseconds(1), [&] {
    ++fired;
    sim.schedule(milliseconds(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), milliseconds(2));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule(milliseconds(5), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator sim;
  const EventHandle h = sim.schedule(milliseconds(5), [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
  sim.run();
}

TEST(Simulator, CancelInvalidHandleFails) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
  EXPECT_FALSE(sim.cancel(EventHandle{999}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule(milliseconds(30), [&] { order.push_back(2); });
  sim.run_until(milliseconds(20));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), milliseconds(20));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilSkipsCancelledBeyondDeadline) {
  Simulator sim;
  bool late_fired = false;
  const EventHandle h = sim.schedule(milliseconds(5), [] {});
  sim.schedule(milliseconds(50), [&] { late_fired = true; });
  sim.cancel(h);
  sim.run_until(milliseconds(10));
  EXPECT_FALSE(late_fired);   // the 50 ms event must not run early
  EXPECT_EQ(sim.now(), milliseconds(10));
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule(milliseconds(1), [&] { ++fired; });
  sim.schedule(milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, PendingEventsCountsUncancelled) {
  Simulator sim;
  const EventHandle a = sim.schedule(milliseconds(1), [] {});
  sim.schedule(milliseconds(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  SimTime observed = -1;
  sim.schedule(milliseconds(7), [&] {
    sim.schedule(0, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, milliseconds(7));
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    sim.schedule((i * 7919) % 1000, [&] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed_events(), 10000u);
}

}  // namespace
}  // namespace switchboard::sim
