// Deep LP-solver properties on randomized instances:
//   * strong duality — when a random primal solves to optimality, its dual
//     must too, with the same objective value;
//   * feasibility of every claimed-optimal solution;
//   * invariance under row/column scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace switchboard::lp {
namespace {

/// A random min-LP in inequality form: min c'x s.t. Ax >= b, x >= 0 with
/// b <= 0 rows mixed in, plus a box to keep it bounded.
struct RandomLp {
  Problem primal{Sense::kMinimize};
  std::vector<std::vector<double>> a;   // dense rows
  std::vector<double> b;
  std::vector<double> c;
  std::size_t vars{0};
  std::size_t rows{0};
};

RandomLp make_random_lp(Rng& rng) {
  RandomLp lp;
  lp.vars = static_cast<std::size_t>(rng.uniform_int(2, 6));
  lp.rows = static_cast<std::size_t>(rng.uniform_int(2, 6));
  lp.c.resize(lp.vars);
  for (std::size_t j = 0; j < lp.vars; ++j) {
    lp.c[j] = rng.uniform(0.1, 5.0);   // positive costs keep min bounded
    lp.primal.add_variable(lp.c[j]);
  }
  lp.a.assign(lp.rows, std::vector<double>(lp.vars, 0.0));
  lp.b.resize(lp.rows);
  for (std::size_t i = 0; i < lp.rows; ++i) {
    std::vector<Term> terms;
    for (std::size_t j = 0; j < lp.vars; ++j) {
      if (rng.bernoulli(0.75)) {
        lp.a[i][j] = rng.uniform(-1.0, 3.0);
        terms.push_back({j, lp.a[i][j]});
      }
    }
    lp.b[i] = rng.uniform(0.0, 8.0);
    if (terms.empty()) {
      lp.a[i][0] = 1.0;
      terms.push_back({0, 1.0});
    }
    lp.primal.add_constraint(Relation::kGreaterEqual, lp.b[i],
                             std::move(terms));
  }
  return lp;
}

/// Dual of (min c'x : Ax >= b, x >= 0):  max b'y : A'y <= c, y >= 0.
Problem make_dual(const RandomLp& lp) {
  Problem dual{Sense::kMaximize};
  for (std::size_t i = 0; i < lp.rows; ++i) {
    dual.add_variable(lp.b[i]);
  }
  for (std::size_t j = 0; j < lp.vars; ++j) {
    std::vector<Term> terms;
    for (std::size_t i = 0; i < lp.rows; ++i) {
      if (lp.a[i][j] != 0.0) terms.push_back({i, lp.a[i][j]});
    }
    dual.add_constraint(Relation::kLessEqual, lp.c[j], std::move(terms));
  }
  return dual;
}

class LpDualityProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, LpDualityProperty,
                         ::testing::Range<std::uint64_t>(100, 120));

TEST_P(LpDualityProperty, StrongDualityHolds) {
  Rng rng{GetParam()};
  const RandomLp lp = make_random_lp(rng);
  const Solution primal = solve(lp.primal);
  const Solution dual = solve(make_dual(lp));

  if (primal.status == SolveStatus::kOptimal) {
    // LP duality: a finite primal optimum implies a finite dual optimum of
    // equal value.
    ASSERT_EQ(dual.status, SolveStatus::kOptimal);
    EXPECT_NEAR(primal.objective, dual.objective,
                1e-5 * (1.0 + std::abs(primal.objective)));
  } else if (primal.status == SolveStatus::kInfeasible) {
    // Infeasible primal => dual unbounded or infeasible.
    EXPECT_NE(dual.status, SolveStatus::kOptimal);
  }
}

TEST_P(LpDualityProperty, OptimalSolutionsAreFeasible) {
  Rng rng{GetParam() + 1000};
  const RandomLp lp = make_random_lp(rng);
  const Solution solution = solve(lp.primal);
  if (!solution.optimal()) return;
  for (std::size_t i = 0; i < lp.rows; ++i) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < lp.vars; ++j) {
      lhs += lp.a[i][j] * solution.values[j];
    }
    EXPECT_GE(lhs, lp.b[i] - 1e-6) << "row " << i;
  }
  for (const double x : solution.values) EXPECT_GE(x, -1e-9);
  // Objective value must match the reported one.
  double objective = 0.0;
  for (std::size_t j = 0; j < lp.vars; ++j) {
    objective += lp.c[j] * solution.values[j];
  }
  EXPECT_NEAR(objective, solution.objective, 1e-6);
}

TEST_P(LpDualityProperty, ScalingInvariance) {
  // Scaling a constraint row by k > 0 must not change the optimum.
  Rng rng{GetParam() + 2000};
  const RandomLp lp = make_random_lp(rng);
  const Solution base = solve(lp.primal);

  Problem scaled{Sense::kMinimize};
  for (std::size_t j = 0; j < lp.vars; ++j) scaled.add_variable(lp.c[j]);
  for (std::size_t i = 0; i < lp.rows; ++i) {
    const double k = rng.uniform(0.1, 10.0);
    std::vector<Term> terms;
    for (std::size_t j = 0; j < lp.vars; ++j) {
      if (lp.a[i][j] != 0.0) terms.push_back({j, k * lp.a[i][j]});
    }
    scaled.add_constraint(Relation::kGreaterEqual, k * lp.b[i],
                          std::move(terms));
  }
  const Solution rescaled = solve(scaled);
  ASSERT_EQ(base.status, rescaled.status);
  if (base.optimal()) {
    EXPECT_NEAR(base.objective, rescaled.objective,
                1e-5 * (1.0 + std::abs(base.objective)));
  }
}

/// Random bounded LP exercising the nonbasic-at-upper machinery: mixed
/// row relations plus finite upper bounds (and occasional shifted lower
/// bounds) on a subset of the variables.
Problem make_random_bounded_lp(Rng& rng) {
  Problem p{rng.bernoulli(0.5) ? Sense::kMinimize : Sense::kMaximize};
  const std::size_t vars = static_cast<std::size_t>(rng.uniform_int(2, 7));
  const std::size_t rows = static_cast<std::size_t>(rng.uniform_int(2, 7));
  for (std::size_t j = 0; j < vars; ++j) {
    p.add_variable(rng.uniform(-4.0, 4.0));
    // Finite upper bounds keep the instance bounded in both senses.
    const double lower = rng.bernoulli(0.3) ? rng.uniform(0.0, 2.0) : 0.0;
    p.set_bounds(j, lower, lower + rng.uniform(0.5, 6.0));
  }
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (std::size_t j = 0; j < vars; ++j) {
      if (rng.bernoulli(0.7)) terms.push_back({j, rng.uniform(-2.0, 3.0)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const double roll = rng.uniform(0.0, 1.0);
    const Relation rel = roll < 0.5   ? Relation::kLessEqual
                         : roll < 0.8 ? Relation::kGreaterEqual
                                      : Relation::kEqual;
    p.add_constraint(rel, rng.uniform(-2.0, 6.0), std::move(terms));
  }
  return p;
}

class SparseDenseParity : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SparseDenseParity,
                         ::testing::Range<std::uint64_t>(500, 560));

TEST_P(SparseDenseParity, StatusAndObjectiveAgree) {
  // The sparse bounded-variable engine and the dense reference (bounds
  // expanded into rows) must agree on solvability, and on the optimal
  // value to 1e-6 relative.
  Rng rng{GetParam()};
  const Problem p = make_random_bounded_lp(rng);
  const Solution sparse = solve(p);
  SimplexOptions dense_options;
  dense_options.algorithm = SimplexAlgorithm::kDenseReference;
  const Solution dense = solve(p, dense_options);
  ASSERT_EQ(sparse.status, dense.status) << "sparse=" << to_string(sparse.status)
                                         << " dense=" << to_string(dense.status);
  if (sparse.optimal()) {
    EXPECT_NEAR(sparse.objective, dense.objective,
                1e-6 * (1.0 + std::abs(dense.objective)));
  }
}

TEST_P(SparseDenseParity, SparseSolutionRespectsBounds) {
  Rng rng{GetParam() + 5000};
  const Problem p = make_random_bounded_lp(rng);
  const Solution s = solve(p);
  if (!s.optimal()) return;
  for (std::size_t j = 0; j < p.variable_count(); ++j) {
    EXPECT_GE(s.values[j], p.lower_bound(j) - 1e-7) << "var " << j;
    EXPECT_LE(s.values[j], p.upper_bound(j) + 1e-7) << "var " << j;
  }
  // Every claimed-optimal basis names exactly row-count basic columns.
  std::size_t basic = 0;
  for (const VarStatus st : s.basis.variables) {
    if (st == VarStatus::kBasic) ++basic;
  }
  for (const VarStatus st : s.basis.slacks) {
    if (st == VarStatus::kBasic) ++basic;
  }
  EXPECT_EQ(basic, p.constraint_count());
}

TEST_P(SparseDenseParity, WarmStartFromOwnBasisIsANoOp) {
  // Feeding a solve's final basis back in must skip phase 1, take zero
  // pivots, and reproduce the identical optimum.
  Rng rng{GetParam() + 9000};
  const Problem p = make_random_bounded_lp(rng);
  const Solution cold = solve(p);
  if (!cold.optimal()) return;
  const Solution warm = solve_simplex(p, {}, &cold.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_TRUE(warm.stats.warm_started);
  EXPECT_TRUE(warm.stats.phase1_skipped);
  EXPECT_EQ(warm.stats.iterations(), 0u);
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-9 * (1.0 + std::abs(cold.objective)));
  EXPECT_EQ(warm.basis.variables, cold.basis.variables);
  EXPECT_EQ(warm.basis.slacks, cold.basis.slacks);
}

TEST(LpStress, MediumSparseInstanceSolves) {
  // A transportation-style LP big enough to exercise refactorization.
  Rng rng{7};
  constexpr int kSources = 30;
  constexpr int kSinks = 40;
  Problem p{Sense::kMinimize};
  std::vector<std::vector<VarIndex>> x(kSources,
                                       std::vector<VarIndex>(kSinks));
  double total_supply = 0.0;
  std::vector<double> supply(kSources);
  std::vector<double> demand(kSinks, 0.0);
  for (int i = 0; i < kSources; ++i) {
    for (int j = 0; j < kSinks; ++j) {
      x[i][j] = p.add_variable(rng.uniform(1.0, 9.0));
    }
    supply[i] = rng.uniform(5.0, 15.0);
    total_supply += supply[i];
  }
  // Demands sum to 80% of supply.
  double remaining = 0.8 * total_supply;
  for (int j = 0; j < kSinks; ++j) {
    demand[j] = remaining / (kSinks - j) * rng.uniform(0.5, 1.5);
    demand[j] = std::min(demand[j], remaining);
    remaining -= demand[j];
  }
  for (int i = 0; i < kSources; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < kSinks; ++j) terms.push_back({x[i][j], 1.0});
    p.add_constraint(Relation::kLessEqual, supply[i], std::move(terms));
  }
  for (int j = 0; j < kSinks; ++j) {
    std::vector<Term> terms;
    for (int i = 0; i < kSources; ++i) terms.push_back({x[i][j], 1.0});
    p.add_constraint(Relation::kEqual, demand[j], std::move(terms));
  }
  SimplexOptions options;
  options.refactor_interval = 64;   // force several refactorizations
  const Solution s = solve(p, options);
  ASSERT_TRUE(s.optimal());
  // Verify all demands met exactly.
  for (int j = 0; j < kSinks; ++j) {
    double served = 0.0;
    for (int i = 0; i < kSources; ++i) served += s.values[x[i][j]];
    EXPECT_NEAR(served, demand[j], 1e-5);
  }
}

TEST(LpStress, RefactorIntervalDoesNotChangeOptimum) {
  Rng rng{17};
  const RandomLp lp = make_random_lp(rng);
  SimplexOptions frequent;
  frequent.refactor_interval = 2;
  SimplexOptions rare;
  rare.refactor_interval = 100000;
  const Solution a = solve(lp.primal, frequent);
  const Solution b = solve(lp.primal, rare);
  ASSERT_EQ(a.status, b.status);
  if (a.optimal()) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6);
  }
}

}  // namespace
}  // namespace switchboard::lp
