// Edge cases of the core facade (Deployment / Middleware) not covered by
// the scenario-level integration tests.
#include <gtest/gtest.h>

#include "switchboard/switchboard.hpp"

namespace switchboard::core {
namespace {

using control::ChainSpec;

dataplane::FiveTuple tuple(std::uint32_t i) {
  return dataplane::FiveTuple{0x0A020000u + i, 0xC0A80001u,
                              static_cast<std::uint16_t>(4000 + i), 80, 6};
}

model::NetworkModel tiny_model() {
  model::NetworkModel m{net::make_line_topology(3, 50.0, 5.0)};
  m.add_site(NodeId{0}, 100.0);
  const SiteId mid = m.add_site(NodeId{1}, 100.0);
  m.add_site(NodeId{2}, 100.0);
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, mid, 100.0);
  return m;
}

TEST(Deployment, InjectOnInactiveChainFails) {
  Middleware mw{tiny_model()};
  mw.register_edge_service("vpn");
  // Chain id 0 exists in no record.
  const auto walk = mw.deployment().inject(ChainId{0}, tuple(1));
  EXPECT_FALSE(walk.delivered);
}

TEST(Deployment, RegisterVnfServiceAfterConstruction) {
  // VNFs registered through the Middleware (not pre-seeded in the model)
  // must be routable: controllers sync lazily.
  model::NetworkModel m{net::make_line_topology(3, 50.0, 5.0)};
  m.add_site(NodeId{0}, 100.0);
  const SiteId mid = m.add_site(NodeId{1}, 100.0);
  m.add_site(NodeId{2}, 100.0);

  Middleware mw{std::move(m)};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const VnfId dpi =
      mw.register_vnf_service("dpi", 2.0, {{mid, 50.0}});

  ChainSpec spec;
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{2};
  spec.vnfs = {dpi};
  const auto report = mw.create_chain(spec);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  const auto walk = mw.send(report->chain, tuple(2));
  ASSERT_TRUE(walk.delivered) << walk.failure;
  EXPECT_EQ(walk.vnf_instances().size(), 1u);
}

TEST(Deployment, WalkReportsPerHopLatency) {
  Middleware mw{tiny_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  ChainSpec spec;
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{2};
  spec.vnfs = {mw.deployment().network_model().vnfs()[0].id};
  const auto report = mw.create_chain(spec);
  ASSERT_TRUE(report.ok());
  const auto walk = mw.send(report->chain, tuple(3));
  ASSERT_TRUE(walk.delivered);
  double total = 0.0;
  for (const auto& hop : walk.path) total += hop.latency_ms;
  EXPECT_NEAR(total, walk.latency_ms, 1e-9);
  // Path structure: edge, fwd, ..., edge.
  EXPECT_EQ(walk.path.front().type, control::ElementType::kEdgeInstance);
  EXPECT_EQ(walk.path.back().type, control::ElementType::kEdgeInstance);
}

TEST(Deployment, VnfProcessingLatencyConfigurable) {
  auto run = [](double processing_ms) {
    DeploymentConfig config;
    config.vnf_processing_ms = processing_ms;
    Middleware mw{tiny_model(), config};
    const EdgeServiceId edge = mw.register_edge_service("vpn");
    ChainSpec spec;
    spec.ingress_service = edge;
    spec.egress_service = edge;
    spec.ingress_node = NodeId{0};
    spec.egress_node = NodeId{2};
    spec.vnfs = {mw.deployment().network_model().vnfs()[0].id};
    const auto report = mw.create_chain(spec);
    EXPECT_TRUE(report.ok());
    return mw.send(report->chain, tuple(4)).latency_ms;
  };
  const double fast = run(0.1);
  const double slow = run(100.0);
  EXPECT_NEAR(slow - fast, 99.9, 1e-6);
}

TEST(Deployment, TwoEdgeServicesCoexist) {
  model::NetworkModel m{net::make_line_topology(3, 50.0, 5.0)};
  m.add_site(NodeId{0}, 100.0);
  const SiteId mid = m.add_site(NodeId{1}, 100.0);
  m.add_site(NodeId{2}, 100.0);
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, mid, 100.0);

  Middleware mw{std::move(m)};
  const EdgeServiceId vpn = mw.register_edge_service("vpn");
  const EdgeServiceId cellular = mw.register_edge_service("cellular");

  // One chain enters via VPN and leaves via cellular.
  ChainSpec spec;
  spec.ingress_service = vpn;
  spec.egress_service = cellular;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{2};
  spec.vnfs = {fw};
  const auto report = mw.create_chain(spec);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  const auto walk = mw.send(report->chain, tuple(5));
  ASSERT_TRUE(walk.delivered) << walk.failure;
  // The two edge services own distinct instances (and forwarders).
  const auto ingress_instance = walk.path.front().element;
  const auto egress_instance = walk.path.back().element;
  EXPECT_NE(ingress_instance, egress_instance);
}

TEST(Middleware, SequentialChainsGetDistinctLabels) {
  Middleware mw{tiny_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  ChainSpec spec;
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{2};
  spec.vnfs = {mw.deployment().network_model().vnfs()[0].id};
  const auto a = mw.create_chain(spec);
  const auto b = mw.create_chain(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->labels.chain, b->labels.chain);
  EXPECT_NE(a->chain, b->chain);
}

}  // namespace
}  // namespace switchboard::core
