// TSan stress for the LOCK-FREE READ PATH (DESIGN.md §15), run by CI's
// tsan concurrency-stress step (every *_concurrency_test binary with
// TSAN_OPTIONS=halt_on_error=1).
//
// Readers drive find_batch()/process_batch() with NO locks while a
// writer churns inserts, erases, overwrites and forced rehashes, retiring
// bucket arrays and entries through the epoch domain the whole time.  The
// assertions are exactly the epoch protocol's promises:
//   * no torn entry: every entry is written with all three fields equal
//     to its key, so any mixed-generation or half-visible read fails;
//   * no reclaimed memory: TSan (and ASan on the asan-ubsan preset)
//     flags any use-after-free if a grace period is computed wrong;
//   * quiesced reclamation drains: once readers unpin, try_reclaim()
//     frees the whole backlog.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "dataplane/forwarder.hpp"
#include "dataplane/sharded_flow_table.hpp"

namespace switchboard::dataplane {
namespace {

FiveTuple make_tuple(std::uint32_t i) {
  return FiveTuple{0x0A000000u + i, 0xC0A80001u,
                   static_cast<std::uint16_t>(1000 + (i % 60000)), 80, 6};
}

// Lock-free readers probe a churning key universe through find() and
// find_batch() while one writer inserts/overwrites/erases and forces
// rehash after rehash by re-growing the key range; a second "janitor"
// thread spins whole-table audits and explicit reclaims.
TEST(DataplaneEpochConcurrency, BatchedReadersNeverSeeTornOrReclaimedState) {
  constexpr std::size_t kReaders = 3;
  constexpr std::uint32_t kKeys = 4096;
  constexpr std::size_t kBatch = 64;

  // Tiny initial capacity so the writer's churn forces many rehashes —
  // every rehash retires a bucket array that readers may still be probing.
  ShardedFlowTable table{64, 4};
  const Labels labels{7, 7};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_hits{0};

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::vector<ShardedFlowTable::LookupRequest> batch{kBatch};
      std::uint64_t hits = 0;
      std::uint32_t cursor = static_cast<std::uint32_t>(r * 17);
      while (!stop.load(std::memory_order_relaxed)) {
        for (ShardedFlowTable::LookupRequest& request : batch) {
          request.labels = labels;
          request.tuple = make_tuple(cursor++ % kKeys);
          request.hit = false;
        }
        table.find_batch(batch);
        for (const ShardedFlowTable::LookupRequest& request : batch) {
          if (!request.hit) continue;
          // Entries are only ever written with all three fields equal to
          // the key: a torn, half-constructed, or stale-generation entry
          // fails here (and a reclaimed one trips TSan/ASan first).
          const std::uint32_t key = request.tuple.src_ip - 0x0A000000u;
          EXPECT_EQ(request.entry.vnf_instance, key);
          EXPECT_EQ(request.entry.next_forwarder, key);
          EXPECT_EQ(request.entry.prev_element, key);
          ++hits;
        }
        // Single-key reads interleave with the batches.
        const std::uint32_t key = cursor % kKeys;
        if (const auto entry = table.find(labels, make_tuple(key))) {
          EXPECT_EQ(entry->vnf_instance, key);
          ++hits;
        }
      }
      total_hits.fetch_add(hits, std::memory_order_relaxed);
    });
  }

  std::thread janitor{[&] {
    while (!stop.load(std::memory_order_relaxed)) {
      table.check_invariants();
      (void)table.epoch_domain().try_reclaim();
      (void)table.size();
    }
  }};

  // The writer: grow the live set (forcing rehashes), overwrite it
  // (retiring entries), erase half (tombstones + retired entries), and
  // occasionally revive erased keys — every retire path under live read
  // traffic.
  for (int round = 0; round < 20; ++round) {
    for (std::uint32_t key = 0; key < kKeys; ++key) {
      table.insert(labels, make_tuple(key), FlowEntry{key, key, key});
    }
    for (std::uint32_t key = 1; key < kKeys; key += 2) {
      (void)table.erase(labels, make_tuple(key));
    }
    for (std::uint32_t key = 1; key < kKeys; key += 4) {
      table.insert_if_absent(labels, make_tuple(key),
                             FlowEntry{key, key, key});   // revive
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  janitor.join();

  EXPECT_GT(total_hits.load(), 0u);
  table.check_invariants();
  // Quiesced: no reader pinned, so one reclaim drains the entire backlog.
  EXPECT_EQ(table.epoch_domain().pinned_readers(), 0u);
  (void)table.epoch_domain().try_reclaim();
  EXPECT_EQ(table.epoch_domain().retired_count(), 0u);

  // Deterministic survivors: every even key was inserted in the final
  // round and never erased afterwards.
  for (std::uint32_t key = 0; key < kKeys; key += 2) {
    const auto entry = table.find(labels, make_tuple(key));
    ASSERT_TRUE(entry.has_value()) << key;
    EXPECT_EQ(entry->vnf_instance, key);
  }
}

// Full-stack version: reader threads drive Forwarder::process_batch()
// (the SoA pipeline) while a writer completes and recreates flows and
// drains/restores elements — rehashes, erases and update_each all racing
// the lock-free batch reads.
TEST(DataplaneEpochConcurrency, ProcessBatchRacesWriterChurn) {
  constexpr std::uint32_t kFlows = 2048;
  constexpr std::size_t kBatch = 64;
  constexpr std::size_t kReaders = 3;

  Forwarder forwarder{1, /*flow_capacity=*/128, /*worker_count=*/4};
  const Labels labels{1, 1};
  LoadBalanceRule rule;
  rule.vnf_instances.add(100, 1.0);
  rule.vnf_instances.add(101, 1.0);
  rule.next_forwarders.add(200, 1.0);
  forwarder.rules().install(labels, rule);

  auto packet_for = [&](std::uint32_t i) {
    Packet packet;
    packet.flow = make_tuple(i % kFlows);
    packet.labels = labels;
    packet.arrival_source = 50;
    return packet;
  };

  // Preload every flow so readers mostly hit.
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    (void)forwarder.process_from_wire(packet_for(i));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::vector<Packet> batch;
      std::vector<ForwardAction> actions{kBatch};
      std::uint32_t cursor = static_cast<std::uint32_t>(r * 31);
      while (!stop.load(std::memory_order_relaxed)) {
        batch.clear();
        for (std::size_t i = 0; i < kBatch; ++i) {
          batch.push_back(packet_for(cursor++));
        }
        (void)forwarder.process_batch(batch, actions);
        for (const ForwardAction& action : actions) {
          if (action.type == ActionType::kDeliverToAttached) {
            // Any pinning must point at a rule instance — a torn or
            // reclaimed entry would surface garbage here.
            EXPECT_TRUE(action.element == 100 || action.element == 101)
                << action.element;
          }
        }
      }
    });
  }

  for (int round = 0; round < 15; ++round) {
    // Tear down a slice of flows (erase + retire), then recreate them
    // (insert, possibly rehash)...
    for (std::uint32_t i = 0; i < kFlows; i += 3) {
      (void)forwarder.complete_flow(labels, make_tuple(i));
    }
    for (std::uint32_t i = 0; i < kFlows; i += 3) {
      (void)forwarder.process_from_wire(packet_for(i));
    }
    // ...and rewrite pinnings in place via the epoch-safe update path.
    (void)forwarder.drain_element(101);
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  forwarder.flow_table().check_invariants();
  EXPECT_EQ(forwarder.flow_table().epoch_domain().pinned_readers(), 0u);
  (void)forwarder.flow_table().epoch_domain().try_reclaim();
  EXPECT_EQ(forwarder.flow_table().epoch_domain().retired_count(), 0u);
}

}  // namespace
}  // namespace switchboard::dataplane
