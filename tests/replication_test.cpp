// Replicated controller (DESIGN.md §18, ctest label: replication):
// journal streaming to hot-standby followers, quorum-acked state changes,
// deterministic epoch-fenced leader failover with no replay window, and
// the chaos soak proving repeated leader kills converge byte-identically
// to the fault-free end state.  Soak length honors SWB_CHAOS_SOAK_MS.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "control/replication.hpp"
#include "sim/chaos_schedule.hpp"
#include "switchboard/switchboard.hpp"

namespace switchboard {
namespace {

using control::ChainSpec;
using control::ReplicaGroup;
using core::DeploymentConfig;
using core::Middleware;

/// Simulated chaos-window length; CI's sanitizer soak raises it.
double soak_ms() {
  if (const char* env = std::getenv("SWB_CHAOS_SOAK_MS")) {
    const double parsed = std::atof(env);
    if (parsed > 0.0) return parsed;
  }
  return 1500.0;
}

dataplane::FiveTuple tuple(std::uint32_t i) {
  return dataplane::FiveTuple{0x0A040000u + i, 0xC0A80002u,
                              static_cast<std::uint16_t>(5000 + i), 443, 6};
}

/// Line A(0) - X(1) - Y(2) - B(3); firewall deployed at X and Y.
model::NetworkModel make_two_pool_model() {
  model::NetworkModel m{net::make_line_topology(4, 100.0, 5.0)};
  m.add_site(NodeId{0}, 100.0, "A");
  m.add_site(NodeId{1}, 100.0, "X");
  m.add_site(NodeId{2}, 100.0, "Y");
  m.add_site(NodeId{3}, 100.0, "B");
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, SiteId{1}, 100.0);
  m.deploy_vnf(fw, SiteId{2}, 100.0);
  return m;
}

ChainSpec make_span_spec(EdgeServiceId edge, VnfId fw, std::string name) {
  ChainSpec spec;
  spec.name = std::move(name);
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{3};
  spec.vnfs = {fw};
  spec.forward_traffic = 1.0;
  spec.reverse_traffic = 0.5;
  return spec;
}

DeploymentConfig replicated_config() {
  DeploymentConfig config;
  config.reliable_bus = true;   // replication streams need acked delivery
  return config;
}

/// Controller-side end-state fingerprint (chains, routes, weights, loads);
/// epochs and counters excluded — they legitimately differ between a
/// failed-over run and its fault-free reference.
std::string state_digest(core::Deployment& dep,
                         const std::vector<ChainId>& chains) {
  std::ostringstream out;
  out << std::setprecision(17);
  for (const ChainId chain : chains) {
    const control::ChainRecord* rec = dep.global().find_record(chain);
    if (rec == nullptr) {
      out << "c" << chain.value() << "=absent\n";
      continue;
    }
    out << "c" << rec->id.value() << " active=" << rec->active;
    for (const control::RouteRecord& route : rec->routes) {
      out << " r" << route.id.value() << "@";
      for (const SiteId site : route.vnf_sites) out << site.value() << ",";
      out << "w=" << route.weight;
    }
    out << "\n";
  }
  const te::Loads& loads = dep.global().loads();
  const model::NetworkModel& m = dep.network_model();
  for (std::size_t e = 0; e < m.topology().link_count(); ++e) {
    out << "L" << e << "="
        << loads.link_load(LinkId{static_cast<std::uint32_t>(e)}) << "\n";
  }
  for (std::size_t s = 0; s < m.sites().size(); ++s) {
    const SiteId site{static_cast<std::uint32_t>(s)};
    out << "S" << s << "=" << loads.site_load(site);
    for (std::size_t f = 0; f < m.vnfs().size(); ++f) {
      out << " v" << f
          << "=" << loads.vnf_site_load(VnfId{static_cast<std::uint32_t>(f)},
                                        site);
    }
    out << "\n";
  }
  return out.str();
}

// --------------------------------------------- streaming + quorum gating

TEST(Replication, StreamingKeepsHotStandbysConvergent) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  Middleware mw{std::move(m), replicated_config()};
  core::Deployment& dep = mw.deployment();
  dep.enable_replication(3);
  ReplicaGroup& group = *dep.replica_group();
  EXPECT_EQ(group.replica_count(), 3u);
  EXPECT_EQ(group.quorum(), 2u);   // majority of 3
  EXPECT_EQ(group.leader(), 0u);

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  std::vector<ChainId> chains;
  for (int i = 0; i < 2; ++i) {
    const auto r =
        mw.create_chain(make_span_spec(edge, fw, "c" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    chains.push_back(r->chain);
  }
  const sim::SimTime t0 = dep.simulator().now();
  dep.simulator().run_until(t0 + sim::from_ms(500.0));

  // Every follower holds every record the leader journaled, applied it to
  // a live mirror, and folded the identical digest.
  EXPECT_GT(group.records_streamed(), 0u);
  EXPECT_EQ(group.digest(1), group.leader_digest());
  EXPECT_EQ(group.digest(2), group.leader_digest());
  for (std::uint32_t r = 0; r < 3; ++r) {
    const control::ReplicaMirror& mirror = group.mirror(r);
    EXPECT_EQ(mirror.chains.size(), 2u) << "replica " << r;
    EXPECT_EQ(mirror.committed.size(), 2u) << "replica " << r;
    EXPECT_TRUE(mirror.inflight.empty()) << "replica " << r;
  }

  // Commits were held at the quorum barrier: each release waited for a
  // real cross-site durability round trip, not zero time.
  EXPECT_GT(group.barriers_released(), 0u);
  EXPECT_EQ(group.barriers_dropped(), 0u);
  EXPECT_GT(group.mean_quorum_ack_ms(), 0.0);
  EXPECT_EQ(group.elections(), 0u);
  EXPECT_EQ(group.divergences(), 0u);

  group.verify_convergence();
  group.check_invariants();
  dep.global().check_invariants();
  dep.stop_replication();
}

TEST(Replication, SingleReplicaGroupReleasesBarriersImmediately) {
  // Quorum 1-of-1 degenerates to the plain durable controller: every
  // barrier releases with zero wait, and compaction happens locally.
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config = replicated_config();
  config.replication.journal.snapshot_interval = 4;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();
  dep.enable_replication(1);
  ReplicaGroup& group = *dep.replica_group();
  EXPECT_EQ(group.quorum(), 1u);

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  for (int i = 0; i < 3; ++i) {
    const auto r =
        mw.create_chain(make_span_spec(edge, fw, "c" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
  }
  EXPECT_GT(group.barriers_released(), 0u);
  EXPECT_EQ(group.mean_quorum_ack_ms(), 0.0);
  EXPECT_EQ(group.records_streamed(), 0u);   // nobody to stream to
  EXPECT_GT(group.journal(0).snapshots_taken(), 0u);
  group.check_invariants();
  dep.stop_replication();
}

TEST(Replication, CompactionIsFencedOnFollowerInstallAcks) {
  // An aggressive snapshot interval forces replicated compactions during
  // chain creation: the leader's log must only truncate after a quorum of
  // followers durably installed the snapshot, and followers must land on
  // the identical digest afterwards.
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config = replicated_config();
  config.replication.journal.snapshot_interval = 4;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();
  dep.enable_replication(3);
  ReplicaGroup& group = *dep.replica_group();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  std::vector<ChainId> chains;
  for (int i = 0; i < 3; ++i) {
    const auto r =
        mw.create_chain(make_span_spec(edge, fw, "c" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    chains.push_back(r->chain);
  }
  const sim::SimTime t0 = dep.simulator().now();
  dep.simulator().run_until(t0 + sim::from_ms(500.0));

  EXPECT_GT(group.snapshot_installs_sent(), 0u);
  EXPECT_GT(group.replicated_compactions(), 0u);
  EXPECT_GT(group.journal(0).snapshots_taken(), 0u);
  EXPECT_EQ(group.digest(1), group.leader_digest());
  EXPECT_EQ(group.digest(2), group.leader_digest());
  group.verify_convergence();
  group.check_invariants();
  dep.stop_replication();
}

// ----------------------------------------------- hot failover mid-2PC

TEST(Replication, LeaderDeathMid2PCFailsOverToReferenceState) {
  // Two runs over the same model and inputs.  `kill` crashes the leader
  // after the second chain's 2PC prepare record was journaled and
  // streamed but before the commit round ran; the elected standby must
  // re-drive the prepared round under the bumped epoch with NO journal
  // replay charged, and land byte-identically on the fault-free end
  // state.
  auto run = [](bool kill) {
    model::NetworkModel m = make_two_pool_model();
    const VnfId fw = m.vnfs()[0].id;
    Middleware mw{std::move(m), replicated_config()};
    core::Deployment& dep = mw.deployment();
    dep.enable_replication(3);
    ReplicaGroup& group = *dep.replica_group();

    const EdgeServiceId edge = mw.register_edge_service("vpn");
    const auto a = mw.create_chain(make_span_spec(edge, fw, "a"));
    EXPECT_TRUE(a.ok());
    const ChainId chain_a = a->chain;

    // The second creation is driven manually: its completion callback
    // belongs to the doomed incarnation and must never fire.
    const sim::SimTime t0 = dep.simulator().now();
    bool done_fired = false;
    dep.global().create_chain(make_span_spec(edge, fw, "b"),
                              [&done_fired](Result<control::CreationReport>) {
                                done_fired = true;
                              });
    const ChainId chain_b{chain_a.value() + 1};

    if (kill) {
      // Timeline from t0: site resolve 35 ms, route compute +20 ms,
      // prepare round +35 ms -> prep journaled and streamed at 90 ms; the
      // commit waits on the prep quorum barrier and runs ~20 ms after the
      // acks land.  Crash at 95 ms: after the prep stream left the
      // leader, before the commit round.
      dep.fault_injector().crash_at(t0 + sim::from_ms(95.0),
                                    "controller:leader");
      dep.simulator().run_until(t0 + sim::from_ms(100.0));
      EXPECT_FALSE(group.replica_up(0));
      EXPECT_FALSE(dep.global().up());
    }

    dep.simulator().run_until(t0 + sim::from_ms(3000.0));

    if (kill) {
      EXPECT_FALSE(done_fired)
          << "the dead incarnation's callback must not fire";
      EXPECT_EQ(group.elections(), 1u);
      EXPECT_EQ(group.cold_restarts(), 0u);
      EXPECT_NE(group.leader(), 0u);
      EXPECT_EQ(dep.global().epoch(), 2u);

      // Hot promotion: the standby's mirror was already live, so the
      // failover charged zero replay cost and still re-drove the
      // prepared commit.
      const control::ColdStartReport& report = dep.global().last_cold_start();
      EXPECT_EQ(report.replay_cost, sim::Duration{0});
      EXPECT_GT(report.replayed_records, 0u);
      EXPECT_EQ(report.redriven_commits, 1u);
      EXPECT_FALSE(group.election_string().empty());
    } else {
      EXPECT_TRUE(done_fired);
      EXPECT_EQ(group.elections(), 0u);
      EXPECT_EQ(dep.global().epoch(), 1u);
    }

    // Both runs must deliver on both chains end to end.
    for (const ChainId chain : {chain_a, chain_b}) {
      const auto walk = mw.send(chain, tuple(7));
      EXPECT_TRUE(walk.delivered) << walk.failure;
    }
    EXPECT_EQ(group.divergences(), 0u);
    group.verify_convergence();
    group.check_invariants();
    dep.global().check_invariants();
    dep.stop_replication();
    return state_digest(dep, {chain_a, chain_b});
  };

  const std::string reference = run(false);
  const std::string failed_over = run(true);
  EXPECT_EQ(failed_over, reference);
}

TEST(Replication, RestoreBeforeDetectionTakesTheColdPath) {
  // A leader that crashes and restores inside the detection window was
  // never deposed: no election runs, and recovery is the legacy §13 cold
  // start — full replay cost charged.  This is the contrast the failover
  // bench measures.
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  Middleware mw{std::move(m), replicated_config()};
  core::Deployment& dep = mw.deployment();
  dep.enable_replication(3);
  ReplicaGroup& group = *dep.replica_group();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto a = mw.create_chain(make_span_spec(edge, fw, "a"));
  ASSERT_TRUE(a.ok());

  const sim::SimTime t0 = dep.simulator().now();
  dep.fault_injector().crash_at(t0 + sim::from_ms(10.0), "controller:leader");
  dep.fault_injector().restore_at(t0 + sim::from_ms(60.0),
                                  "controller:leader");
  dep.simulator().run_until(t0 + sim::from_ms(3000.0));

  EXPECT_EQ(group.elections(), 0u);
  EXPECT_EQ(group.cold_restarts(), 1u);
  EXPECT_EQ(group.leader(), 0u);
  EXPECT_EQ(dep.global().epoch(), 2u);
  EXPECT_GT(dep.global().last_cold_start().replay_cost, sim::Duration{0});
  const auto walk = mw.send(a->chain, tuple(9));
  EXPECT_TRUE(walk.delivered) << walk.failure;
  group.verify_convergence();
  group.check_invariants();
  dep.stop_replication();
}

// ------------------------------------------------ election determinism

TEST(Replication, ElectionIsDeterministicAcrossPresets) {
  // Three deployment presets, each run twice: the election trace —
  // election time, winner, epoch — must be byte-identical between runs of
  // the same preset.  Nothing in the failover path may consult wall
  // clocks, randomness, or container iteration order.
  struct Preset {
    std::uint32_t replicas;
    std::uint32_t quorum;   // 0 = majority
    double period_ms;
  };
  const std::vector<Preset> presets{{3, 0, 50.0}, {3, 2, 30.0}, {4, 0, 50.0}};

  auto run = [](const Preset& preset) {
    model::NetworkModel m = make_two_pool_model();
    const VnfId fw = m.vnfs()[0].id;
    DeploymentConfig config = replicated_config();
    config.replication.quorum = preset.quorum;
    config.replication.detector.period = sim::from_ms(preset.period_ms);
    Middleware mw{std::move(m), config};
    core::Deployment& dep = mw.deployment();
    dep.enable_replication(preset.replicas);
    ReplicaGroup& group = *dep.replica_group();

    const EdgeServiceId edge = mw.register_edge_service("vpn");
    const auto a = mw.create_chain(make_span_spec(edge, fw, "a"));
    EXPECT_TRUE(a.ok());

    const sim::SimTime t0 = dep.simulator().now();
    dep.fault_injector().crash_at(t0 + sim::from_ms(10.0),
                                  "controller:leader");
    dep.simulator().run_until(t0 + sim::from_ms(2000.0));
    EXPECT_EQ(group.elections(), 1u);
    dep.stop_replication();
    return group.election_string();
  };

  std::vector<std::string> traces;
  for (const Preset& preset : presets) {
    const std::string first = run(preset);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, run(preset)) << "election trace diverged between "
                                  << "identical runs";
    traces.push_back(first);
  }
  // The presets genuinely differ (different timing -> different traces).
  EXPECT_NE(traces[0], traces[1]);
}

// --------------------------------------- follower loss + catch-up resync

TEST(Replication, FollowerCrashDoesNotStallQuorumAndResyncsOnRestore) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  Middleware mw{std::move(m), replicated_config()};
  core::Deployment& dep = mw.deployment();
  dep.enable_replication(3);
  ReplicaGroup& group = *dep.replica_group();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto a = mw.create_chain(make_span_spec(edge, fw, "a"));
  ASSERT_TRUE(a.ok());

  // Follower 2 dies; the 2-of-3 quorum (leader + follower 1) still
  // releases barriers, so the next creation completes during the outage.
  dep.fault_injector().crash("controller:replica2");
  const auto b = mw.create_chain(make_span_spec(edge, fw, "b"));
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  EXPECT_EQ(group.digest(1), group.leader_digest());
  EXPECT_NE(group.digest(2), group.leader_digest());

  // Restore: the live leader re-syncs the amnesiac follower with a fresh
  // snapshot install; it converges without an election or cold start.
  dep.fault_injector().restore("controller:replica2");
  const sim::SimTime t0 = dep.simulator().now();
  dep.simulator().run_until(t0 + sim::from_ms(1000.0));

  EXPECT_EQ(group.elections(), 0u);
  EXPECT_EQ(group.cold_restarts(), 0u);
  EXPECT_GT(group.snapshot_installs_sent(), 0u);
  EXPECT_EQ(group.digest(2), group.leader_digest());
  group.verify_convergence();
  group.check_invariants();
  dep.stop_replication();
}

TEST(Replication, PartitionedLeaderIsAFalseSuspicionNotAnElection) {
  // The CP choice: heartbeat silence from a leader whose process is alive
  // (a pure partition) must never elect a second coordinator.  Move the
  // leader off the detector's site first, then cut the link between them.
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  Middleware mw{std::move(m), replicated_config()};
  core::Deployment& dep = mw.deployment();
  dep.enable_replication(3);
  ReplicaGroup& group = *dep.replica_group();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto a = mw.create_chain(make_span_spec(edge, fw, "a"));
  ASSERT_TRUE(a.ok());

  // Kill replica 0 long enough for a real election, then bring it back as
  // a follower.
  const sim::SimTime t0 = dep.simulator().now();
  dep.fault_injector().crash_at(t0 + sim::from_ms(10.0), "controller:leader");
  dep.fault_injector().restore_at(t0 + sim::from_ms(800.0),
                                  "controller:leader");
  dep.simulator().run_until(t0 + sim::from_ms(1500.0));
  ASSERT_EQ(group.elections(), 1u);
  const std::uint32_t leader = group.leader();
  ASSERT_NE(leader, 0u);
  ASSERT_TRUE(group.replica_up(0));

  // Partition the new leader's site from the detector's site (site 0).
  // Its heartbeats go silent while its process stays up: the detector
  // suspects it, the group refuses to elect, and the suspicion is
  // counted as false.
  const SiteId leader_site = group.site_of(leader);
  dep.fault_injector().partition_sites(SiteId{0}, leader_site);
  dep.simulator().run_until(t0 + sim::from_ms(2300.0));
  EXPECT_GE(group.false_suspicions(), 1u);
  EXPECT_EQ(group.elections(), 1u);
  EXPECT_EQ(group.leader(), leader);

  // Heal; the stalled follower catches up via the beat-loop repair
  // install and the group converges again.
  dep.fault_injector().heal_sites(SiteId{0}, leader_site);
  dep.simulator().run_until(t0 + sim::from_ms(3500.0));
  const auto walk = mw.send(a->chain, tuple(3));
  EXPECT_TRUE(walk.delivered) << walk.failure;
  group.verify_convergence();
  group.check_invariants();
  dep.stop_replication();
}

// ----------------------------------------------------------- chaos soak

// Repeated scripted leader kills — every outage longer than the detection
// window, so each kill forces a real election — plus partitions between
// replica sites.  After the window heals and the tail settles, the
// controller state must be byte-identical to its own pre-chaos snapshot:
// failovers are invisible to the state machine.
TEST(ReplicationSoak, RepeatedLeaderKillsConvergeByteIdentically) {
  const double window_ms = soak_ms();
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  Middleware mw{std::move(m), replicated_config()};
  core::Deployment& dep = mw.deployment();
  dep.enable_replication(3);
  ReplicaGroup& group = *dep.replica_group();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  std::vector<ChainId> chains;
  for (int i = 0; i < 2; ++i) {
    const auto r =
        mw.create_chain(make_span_spec(edge, fw, "c" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    chains.push_back(r->chain);
  }
  const sim::SimTime t0 = dep.simulator().now();
  dep.simulator().run_until(t0 + sim::from_ms(200.0));
  const std::string before = state_digest(dep, chains);

  // Detection needs ~period * (threshold + 1) of silence; a 400 ms floor
  // clears the 50 ms x 3 default with margin, so every kill is detected
  // and elected around, never ridden out.
  const sim::SimTime horizon = t0 + sim::from_ms(200.0 + window_ms);
  sim::ChaosSchedule chaos{
      dep.simulator(),
      dep.fault_injector(),
      {.start = t0 + sim::from_ms(250.0),
       .horizon = horizon,
       .mean_gap = sim::from_ms(400.0),
       .min_outage = sim::from_ms(400.0),
       .max_outage = sim::from_ms(700.0),
       .crash_weight = 3.0,
       .partition_weight = 1.0,
       .crash_targets = {"controller:leader", "controller:replica1",
                         "controller:replica2"},
       .partition_sites = {SiteId{0}, SiteId{1}, SiteId{2}}},
      0xFA110FELL};
  chaos.arm();
  ASSERT_FALSE(chaos.plan().empty());

  // Step through the window auditing the group at each boundary.
  for (sim::SimTime at = t0; at < horizon; at += sim::from_ms(250.0)) {
    dep.simulator().run_until(at + sim::from_ms(250.0));
    group.check_invariants();
    dep.global().check_invariants();
    dep.fault_injector().check_invariants();
  }

  // Heal-and-settle tail: repair installs re-sync stalled followers.
  dep.simulator().run_until(horizon + sim::from_ms(2500.0));
  dep.stop_replication();

  EXPECT_GE(group.elections(), 1u)
      << "every outage outlives detection, so the plan must have elected";
  EXPECT_EQ(group.divergences(), 0u);
  EXPECT_EQ(state_digest(dep, chains), before)
      << "failovers leaked into the controller state";
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(chains.size());
       ++i) {
    const auto walk = mw.send(chains[i], tuple(50 + i));
    EXPECT_TRUE(walk.delivered) << walk.failure;
  }
  group.verify_convergence();
  group.check_invariants();
  dep.global().check_invariants();
  dep.durable_store().check_invariants();
}

}  // namespace
}  // namespace switchboard
