// Fault injection + end-to-end recovery: seeded-determinism property
// tests on the FaultInjector, the kill-instance -> detect -> reroute ->
// drain pipeline, partition-heals-and-2PC-converges, and duplicate
// re-delivery idempotency.  All scenarios run on the discrete-event
// simulator, so the concurrency-sensitive drain path also runs under the
// sanitizer presets with the rest of the suite (ctest label: faults).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "dataplane/traffic_gen.hpp"
#include "switchboard/switchboard.hpp"

namespace switchboard {
namespace {

using control::ChainSpec;
using core::DeploymentConfig;
using core::Middleware;

dataplane::FiveTuple tuple(std::uint32_t i) {
  return dataplane::FiveTuple{0x0A020000u + i, 0xC0A80002u,
                              static_cast<std::uint16_t>(3000 + i), 443, 6};
}

/// Line A(0) - X(1) - Y(2) - B(3); firewall deployed at X and Y so a
/// failed pool always has a surviving replacement site.
model::NetworkModel make_two_pool_model() {
  model::NetworkModel m{net::make_line_topology(4, 100.0, 5.0)};
  m.add_site(NodeId{0}, 100.0, "A");
  m.add_site(NodeId{1}, 100.0, "X");
  m.add_site(NodeId{2}, 100.0, "Y");
  m.add_site(NodeId{3}, 100.0, "B");
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, SiteId{1}, 100.0);
  m.deploy_vnf(fw, SiteId{2}, 100.0);
  return m;
}

ChainSpec make_span_spec(EdgeServiceId edge, VnfId fw) {
  ChainSpec spec;
  spec.name = "span";
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{3};
  spec.vnfs = {fw};
  spec.forward_traffic = 1.0;
  spec.reverse_traffic = 0.5;
  return spec;
}

// ------------------------------------------------------ injector basics

TEST(FaultInjector, UnconfiguredInjectorIsInert) {
  sim::Simulator sim;
  sim::FaultInjector faults{sim, 1234};
  for (int i = 0; i < 100; ++i) {
    const auto verdict = faults.on_message(SiteId{0}, SiteId{1}, "/t");
    EXPECT_FALSE(verdict.faulted());
  }
  EXPECT_TRUE(faults.trace().empty());
  faults.check_invariants();
}

TEST(FaultInjector, PartitionDropsBothDirectionsUntilHealed) {
  sim::Simulator sim;
  sim::FaultInjector faults{sim, 1};
  faults.partition_sites(SiteId{2}, SiteId{0});
  EXPECT_TRUE(faults.partitioned(SiteId{0}, SiteId{2}));
  EXPECT_TRUE(faults.on_message(SiteId{0}, SiteId{2}, "/t").drop);
  EXPECT_TRUE(faults.on_message(SiteId{2}, SiteId{0}, "/t").drop);
  EXPECT_FALSE(faults.on_message(SiteId{0}, SiteId{1}, "/t").drop);
  faults.heal_sites(SiteId{0}, SiteId{2});
  EXPECT_FALSE(faults.partitioned(SiteId{0}, SiteId{2}));
  EXPECT_FALSE(faults.on_message(SiteId{0}, SiteId{2}, "/t").drop);
  faults.check_invariants();
}

TEST(FaultInjector, ScriptedCrashAndRestoreDriveTheTargetCallback) {
  sim::Simulator sim;
  sim::FaultInjector faults{sim, 1};
  bool up = true;
  faults.register_target("element:7", [&up](bool state) { up = state; });
  faults.crash_at(sim::from_ms(10.0), "element:7");
  faults.restore_at(sim::from_ms(30.0), "element:7");
  sim.run_until(sim::from_ms(20.0));
  EXPECT_FALSE(up);
  EXPECT_TRUE(faults.is_down("element:7"));
  sim.run_until(sim::from_ms(40.0));
  EXPECT_TRUE(up);
  EXPECT_FALSE(faults.is_down("element:7"));
  // crash + restore, in timestamp order.
  ASSERT_EQ(faults.trace().size(), 2u);
  EXPECT_EQ(faults.trace()[0].kind, "crash");
  EXPECT_EQ(faults.trace()[1].kind, "restore");
  faults.check_invariants();
}

TEST(FaultInjector, SameSeedSameQuerySequenceGivesIdenticalVerdicts) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    sim::FaultInjector faults{sim, seed};
    sim::MessageFaultConfig config;
    config.drop_probability = 0.1;
    config.duplicate_probability = 0.1;
    config.delay_probability = 0.2;
    config.max_extra_delay = sim::from_ms(20.0);
    faults.set_message_faults(config);
    for (std::uint32_t i = 0; i < 500; ++i) {
      faults.on_message(SiteId{i % 4}, SiteId{(i + 1) % 4},
                        "/t" + std::to_string(i % 3));
    }
    return faults.trace_string();
  };
  const std::string a = run(77);
  EXPECT_EQ(a, run(77));
  EXPECT_NE(a, run(78));
}

// ------------------------------------------- end-to-end chain recovery

TEST(Recovery, KillInstanceDetectRerouteDrain) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;

  DeploymentConfig config;
  config.detector.period = sim::from_ms(50.0);
  config.detector.suspicion_threshold = 3;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto report = mw.create_chain(make_span_spec(edge, fw));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  const ChainId chain = report->chain;

  ASSERT_EQ(mw.chain_record(chain).routes.size(), 1u);
  const SiteId dead_site = mw.chain_record(chain).routes[0].vnf_sites[0];
  const SiteId survivor =
      dead_site == SiteId{1} ? SiteId{2} : SiteId{1};

  // Pin a flow through the doomed pool, so the drain has work to do.
  const auto pre = mw.send(chain, tuple(1));
  ASSERT_TRUE(pre.delivered) << pre.failure;
  const auto pinned = pre.vnf_instances();
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(dep.elements().info(pinned[0]).site, dead_site);

  const double total_before =
      dep.global().loads().vnf_site_load(fw, dead_site) +
      dep.global().loads().vnf_site_load(fw, survivor);

  dep.enable_recovery();
  const std::vector<dataplane::ElementId> doomed =
      dep.elements().vnf_instances_at(dead_site, fw);
  ASSERT_FALSE(doomed.empty());
  for (const dataplane::ElementId id : doomed) {
    dep.fault_injector().crash("element:" + std::to_string(id));
  }

  // One beat carries the down-elements report; the reroute (compute +
  // 2PC + rule install) completes well inside two simulated seconds.
  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(2000.0));
  dep.stop_recovery();

  EXPECT_GE(dep.failure_detector().element_failures_reported(),
            static_cast<std::uint64_t>(doomed.size()));

  // The chain is active again, entirely off the dead pool.
  const control::ChainRecord& record = mw.chain_record(chain);
  EXPECT_TRUE(record.active);
  ASSERT_FALSE(record.routes.empty());
  for (const control::RouteRecord& route : record.routes) {
    for (const SiteId site : route.vnf_sites) {
      EXPECT_EQ(site, survivor) << "route still places fw on dead site";
    }
  }

  // Admitted volume is conserved: the dead pool's load moved wholesale
  // onto the survivor (incremental re-solve, audited in GSB invariants).
  EXPECT_NEAR(dep.global().loads().vnf_site_load(fw, dead_site), 0.0, 1e-9);
  EXPECT_NEAR(dep.global().loads().vnf_site_load(fw, survivor),
              total_before, 1e-6);

  // Drain: the previously-pinned flow and fresh flows all avoid the dead
  // instances.
  for (std::uint32_t i = 1; i <= 8; ++i) {
    const auto walk = mw.send(chain, tuple(i));
    ASSERT_TRUE(walk.delivered) << "flow " << i << ": " << walk.failure;
    for (const dataplane::ElementId instance : walk.vnf_instances()) {
      EXPECT_EQ(dep.elements().info(instance).site, survivor)
          << "flow " << i << " routed through the dead pool";
    }
  }
}

TEST(Recovery, SiteDeathIsSuspectedAfterSilenceAndReroutes) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;

  DeploymentConfig config;
  config.detector.period = sim::from_ms(50.0);
  config.detector.suspicion_threshold = 3;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto report = mw.create_chain(make_span_spec(edge, fw));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  const ChainId chain = report->chain;
  const SiteId dead_site = mw.chain_record(chain).routes[0].vnf_sites[0];
  const SiteId survivor =
      dead_site == SiteId{1} ? SiteId{2} : SiteId{1};

  dep.enable_recovery();
  // Crash the whole site: its Local Switchboard goes silent and every
  // element there stops processing.
  dep.fault_injector().crash("site:" + std::to_string(dead_site.value()));
  for (const dataplane::ElementId id :
       dep.elements().elements_at(dead_site)) {
    dep.fault_injector().crash("element:" + std::to_string(id));
  }

  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(2000.0));
  dep.stop_recovery();

  EXPECT_TRUE(dep.failure_detector().suspects(dead_site));
  EXPECT_GE(dep.failure_detector().suspicions_raised(), 1u);

  const control::ChainRecord& record = mw.chain_record(chain);
  EXPECT_TRUE(record.active);
  ASSERT_FALSE(record.routes.empty());
  for (const control::RouteRecord& route : record.routes) {
    for (const SiteId site : route.vnf_sites) {
      EXPECT_EQ(site, survivor);
    }
  }
  const auto walk = mw.send(chain, tuple(9));
  ASSERT_TRUE(walk.delivered) << walk.failure;
}

TEST(Recovery, PartitionHealsAndActivationConverges) {
  model::NetworkModel m{net::make_line_topology(3, 100.0, 5.0)};
  m.add_site(NodeId{0}, 100.0, "A");
  m.add_site(NodeId{1}, 100.0, "M");
  m.add_site(NodeId{2}, 100.0, "B");
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, SiteId{1}, 100.0);

  DeploymentConfig config;
  config.reliable_bus = true;
  config.bus_ack_timeout = sim::from_ms(150.0);
  config.bus_max_retransmits = 8;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  // Cut the coordinator off from the VNF site for the first 600 ms: the
  // initial route announcements starve; acked delivery retransmits them
  // until the heal, and activation completes.
  dep.fault_injector().partition_sites_for(SiteId{0}, SiteId{1},
                                           sim::from_ms(600.0));

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  ChainSpec spec;
  spec.name = "healed";
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{2};
  spec.vnfs = {fw};
  const auto report = mw.create_chain(spec);
  ASSERT_TRUE(report.ok()) << report.error().to_string();

  EXPECT_FALSE(dep.fault_injector().partitioned(SiteId{0}, SiteId{1}));
  EXPECT_GT(dep.bus().stats().retransmits, 0u);
  EXPECT_GT(dep.bus().stats().acks, 0u);
  EXPECT_GT(dep.simulator().now(), sim::from_ms(600.0))
      << "activation finished before the partition healed?";

  const auto walk = mw.send(report->chain, tuple(3));
  ASSERT_TRUE(walk.delivered) << walk.failure;
}

TEST(Recovery, DuplicatedControlMessagesAreIdempotent) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;

  DeploymentConfig config;
  config.reliable_bus = true;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  // Every wide-area copy is duplicated: route/instance announcements all
  // arrive (at least) twice.  Upserts keep the control plane convergent.
  sim::MessageFaultConfig faults;
  faults.duplicate_probability = 1.0;
  dep.fault_injector().set_message_faults(faults);

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto report = mw.create_chain(make_span_spec(edge, fw));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_GT(dep.bus().stats().faults_duplicated, 0u);

  const auto walk = mw.send(report->chain, tuple(4));
  ASSERT_TRUE(walk.delivered) << walk.failure;
  dep.global().check_invariants();
}

// ------------------------------------------- concurrent drain (TSan)

// The failure drain runs on the control plane while packet workers keep
// hammering the shard locks: drain_element's all-shard invalidation must
// be race-free against process_from_wire.  (Runs under the tsan preset
// with the rest of the suite.)
TEST(FaultConcurrency, DrainRacesPacketWorkers) {
  using namespace dataplane;
  constexpr std::size_t kWorkers = 4;
  constexpr std::uint32_t kFlows = 2048;
  Forwarder forwarder{1, kFlows * 2, kWorkers};
  LoadBalanceRule rule;
  rule.vnf_instances.add(100, 1.0);
  rule.vnf_instances.add(101, 1.0);
  forwarder.rules().install(Labels{1, 1}, std::move(rule));

  std::atomic<bool> stop{false};
  std::thread drainer([&forwarder, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      forwarder.drain_element(100);
    }
  });
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&forwarder, w] {
      TrafficGenConfig config;
      config.flow_count = kFlows;
      config.worker_count = kWorkers;
      config.worker_index = static_cast<std::uint32_t>(w);
      PacketStream stream{config};
      const std::size_t owned = stream.owned_flow_count();
      for (std::size_t i = 0; i < 3 * owned; ++i) {
        Packet p = stream.next();
        p.arrival_source = 50;
        const ForwardAction action = forwarder.process_from_wire(p);
        EXPECT_EQ(action.type, ActionType::kDeliverToAttached);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true);
  drainer.join();

  // Quiesced: one final drain leaves no pinning on the dead instance.
  forwarder.drain_element(100);
  forwarder.flow_table().for_each(
      [](const Labels&, const FiveTuple&, const FlowEntry& entry) {
        EXPECT_NE(entry.vnf_instance, ElementId{100});
      });
}

// --------------------------------------------- seeded full-run property

/// One complete lossy-run scenario: chain creation under randomized
/// message faults, then a scripted crash + recovery window.  Returns the
/// injector's full fault trace.
std::string lossy_recovery_trace(std::uint64_t seed) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;

  DeploymentConfig config;
  config.fault_seed = seed;
  config.reliable_bus = true;
  config.bus_ack_timeout = sim::from_ms(100.0);
  config.bus_max_retransmits = 10;
  config.detector.period = sim::from_ms(50.0);
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  sim::MessageFaultConfig faults;
  faults.drop_probability = 0.05;
  faults.duplicate_probability = 0.05;
  faults.delay_probability = 0.10;
  faults.max_extra_delay = sim::from_ms(10.0);
  dep.fault_injector().set_message_faults(faults);

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto report = mw.create_chain(make_span_spec(edge, fw));
  if (!report.ok()) return "creation-failed: " + report.error().to_string();

  dep.enable_recovery();
  const SiteId dead_site =
      mw.chain_record(report->chain).routes[0].vnf_sites[0];
  for (const dataplane::ElementId id :
       dep.elements().vnf_instances_at(dead_site, fw)) {
    dep.fault_injector().crash_for("element:" + std::to_string(id),
                                   sim::from_ms(500.0));
  }
  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(1500.0));
  dep.stop_recovery();
  return dep.fault_injector().trace_string();
}

// A transient element flap — down in one heartbeat, back before the next —
// must not trigger a route retirement: the detector debounces element
// reports over `element_debounce_beats` consecutive beats.  A sustained
// failure still gets through one beat later.
TEST(Recovery, FlappingElementWithinDebounceWindowDoesNotReroute) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;

  DeploymentConfig config;
  config.detector.period = sim::from_ms(50.0);
  config.detector.suspicion_threshold = 3;
  ASSERT_EQ(config.detector.element_debounce_beats, 2u);   // the default
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto report = mw.create_chain(make_span_spec(edge, fw));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  const ChainId chain = report->chain;
  const SiteId placed = mw.chain_record(chain).routes[0].vnf_sites[0];

  dep.enable_recovery();
  const sim::SimTime t0 = dep.simulator().now();
  const std::vector<dataplane::ElementId> pool =
      dep.elements().vnf_instances_at(placed, fw);
  ASSERT_FALSE(pool.empty());

  // Flap: down after the first beat, reported down in exactly one beat
  // (streak 1 < 2), healed before the second report.
  for (const dataplane::ElementId id : pool) {
    dep.fault_injector().crash_at(t0 + sim::from_ms(60.0),
                                  "element:" + std::to_string(id));
    dep.fault_injector().restore_at(t0 + sim::from_ms(120.0),
                                    "element:" + std::to_string(id));
  }
  dep.simulator().run_until(t0 + sim::from_ms(500.0));

  EXPECT_EQ(dep.failure_detector().element_failures_reported(), 0u);
  ASSERT_EQ(mw.chain_record(chain).routes.size(), 1u);
  EXPECT_EQ(mw.chain_record(chain).routes[0].vnf_sites[0], placed)
      << "a one-beat flap retired the route";

  // Debounced, not deaf: leave the pool down for good and the failure is
  // relayed on the second consecutive beat, rerouting the chain.
  for (const dataplane::ElementId id : pool) {
    dep.fault_injector().crash("element:" + std::to_string(id));
  }
  dep.simulator().run_until(t0 + sim::from_ms(2500.0));
  dep.stop_recovery();

  EXPECT_GE(dep.failure_detector().element_failures_reported(),
            static_cast<std::uint64_t>(pool.size()));
  const SiteId survivor = placed == SiteId{1} ? SiteId{2} : SiteId{1};
  ASSERT_FALSE(mw.chain_record(chain).routes.empty());
  for (const control::RouteRecord& route : mw.chain_record(chain).routes) {
    EXPECT_EQ(route.vnf_sites[0], survivor);
  }
  dep.failure_detector().check_invariants();
}

// Suspect -> heal -> re-suspect: the restored site gets its zeroed pool
// capacity back (on_instance_up), and the second failure retires cleanly
// again instead of double-releasing.
TEST(Recovery, HealedSiteRestoresPoolCapacityAndSecondFailureIsClean) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;

  DeploymentConfig config;
  config.detector.period = sim::from_ms(50.0);
  config.detector.suspicion_threshold = 3;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto report = mw.create_chain(make_span_spec(edge, fw));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  const ChainId chain = report->chain;
  const SiteId placed = mw.chain_record(chain).routes[0].vnf_sites[0];
  const double capacity_before =
      dep.network_model().vnf(fw).capacity_at(placed);
  ASSERT_GT(capacity_before, 0.0);

  dep.enable_recovery();
  const std::string target = "site:" + std::to_string(placed.value());
  const sim::SimTime t0 = dep.simulator().now();

  // First outage: silence -> suspicion -> pool zeroed + routes retired.
  dep.fault_injector().crash_at(t0 + sim::from_ms(10.0), target);
  dep.simulator().run_until(t0 + sim::from_ms(1000.0));
  EXPECT_EQ(dep.failure_detector().suspicions_raised(), 1u);
  EXPECT_EQ(dep.network_model().vnf(fw).capacity_at(placed), 0.0);

  // Heal: beats resume, the pool's capacity is restored verbatim.
  dep.fault_injector().restore(target);
  dep.simulator().run_until(t0 + sim::from_ms(2000.0));
  EXPECT_EQ(dep.failure_detector().recoveries_observed(), 1u);
  EXPECT_EQ(dep.network_model().vnf(fw).capacity_at(placed),
            capacity_before);

  // Second outage on the same site retires cleanly again.
  dep.fault_injector().crash(target);
  dep.simulator().run_until(t0 + sim::from_ms(3000.0));
  dep.stop_recovery();
  EXPECT_EQ(dep.failure_detector().suspicions_raised(), 2u);
  EXPECT_EQ(dep.network_model().vnf(fw).capacity_at(placed), 0.0);

  // Throughout, the chain stayed deliverable off the surviving pool.
  EXPECT_TRUE(mw.chain_record(chain).active);
  const auto walk = mw.send(chain, tuple(9));
  EXPECT_TRUE(walk.delivered) << walk.failure;
  dep.failure_detector().check_invariants();
  dep.global().check_invariants();
}

TEST(Recovery, SameFaultSeedGivesByteIdenticalTrace) {
  const std::string a = lossy_recovery_trace(0xFA17);
  const std::string b = lossy_recovery_trace(0xFA17);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "fault trace diverged between identical runs";
  EXPECT_NE(a, lossy_recovery_trace(0xFA18))
      << "different seeds produced identical lossy traces";
}

}  // namespace
}  // namespace switchboard
