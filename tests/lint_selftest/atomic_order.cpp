// lint.py --self-test fixture for M1: raw std::atomic accesses on
// data-plane shared state must spell out their std::memory_order — the
// seq_cst default hides the ordering contract the epoch-read protocol
// (DESIGN.md §15) depends on.  Exercises both directions: defaulted
// accesses are findings, explicitly-ordered accesses (including an
// explicit seq_cst) are not, and one defaulted access is excused via the
// inline escape as the negative control.  NOT compiled; scanned by the
// determinism linter.
#include <atomic>
#include <cstdint>

namespace lint_fixture {

class EpochCounter {
 public:
  // Defaulted orderings: every one of these silently means seq_cst.
  [[nodiscard]] std::uint64_t read_bad() const {
    return epoch_.load();                              // expect-lint: M1
  }
  void publish_bad(std::uint64_t e) {
    epoch_.store(e);                                   // expect-lint: M1
    (void)epoch_.fetch_add(1);                         // expect-lint: M1
  }
  bool claim_bad(std::uint64_t& seen) {
    return epoch_.compare_exchange_strong(seen,        // expect-lint: M1
                                          seen + 1);
  }

  // Explicit orderings: the contract is visible — no findings.
  [[nodiscard]] std::uint64_t read_ok() const {
    return epoch_.load(std::memory_order_acquire);
  }
  void publish_ok(std::uint64_t e) {
    epoch_.store(e, std::memory_order_release);
    (void)epoch_.fetch_add(1, std::memory_order_seq_cst);
  }
  bool claim_ok(std::uint64_t& seen) {
    return epoch_.compare_exchange_strong(seen, seen + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  // Negative control: a real M1 match excused visibly.  Test-only sanity
  // counter with no ordering role; the self-test fails if this line
  // produces a finding.
  void bump_stat() {
    (void)stat_.fetch_add(1);  // swb-lint: allow(M1): test-only tally
  }

 private:
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> stat_{0};
};

}  // namespace lint_fixture
