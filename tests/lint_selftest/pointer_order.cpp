// lint.py --self-test fixture: D4 — pointer-keyed ordering and
// address-dependent hashing.  NOT compiled; scanned by the determinism
// linter.
#include <cstdint>
#include <map>
#include <set>

namespace lint_fixture {

struct Node {
  int id{0};
};

class Registry {
 public:
  // BUG: ordered by allocation address, which differs run to run.
  std::map<const Node*, int> ranks_;          // expect-lint: D4

  // BUG: same hazard for a set of pointers.
  std::set<Node*> live_;                      // expect-lint: D4

  // BUG: hashing an address bakes the allocator's layout into the value.
  [[nodiscard]] std::size_t token(const Node* node) const {
    return std::hash<const Node*>{}(node);    // expect-lint: D4
  }

  // BUG: an address cast to an integer is still an address.
  [[nodiscard]] std::uint64_t key(const Node* node) const {
    return reinterpret_cast<std::uintptr_t>(node);   // expect-lint: D4
  }
};

}  // namespace lint_fixture
