// lint.py --self-test fixture: negative control for the inline escape.
// The iteration below is a real D1 match, but the `swb-lint: allow` on
// the line suppresses it — the self-test fails if this file produces any
// finding.  NOT compiled; scanned by the determinism linter.
#include <string>
#include <unordered_set>

namespace lint_fixture {

class Auditor {
 public:
  // Audit-only iteration: every element is checked independently, nothing
  // depends on visit order, so the hazard is excused *visibly*.
  [[nodiscard]] bool all_nonempty() const {
    for (const auto& name : names_) {   // swb-lint: allow(D1): audit only
      if (name.empty()) return false;
    }
    return true;
  }

 private:
  std::unordered_set<std::string> names_;
};

}  // namespace lint_fixture
