// lint.py --self-test fixture: D2 (banned randomness) and D3 (wall-clock
// reads) in a mock TE solver.  NOT compiled; scanned by the determinism
// linter.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace lint_fixture {

class Solver {
 public:
  // BUG: std::rand draws from global, unseeded-by-us state.
  [[nodiscard]] int pick_route(int route_count) {
    return std::rand() % route_count;         // expect-lint: D2
  }

  // BUG: random_device is nondeterministic by design.
  [[nodiscard]] unsigned reseed() {
    std::random_device entropy;               // expect-lint: D2
    return entropy();
  }

  // BUG: host wall clock leaks into simulated decisions.
  [[nodiscard]] long long deadline_ns() {
    const auto now = std::chrono::steady_clock::now();   // expect-lint: D3
    return now.time_since_epoch().count();
  }

  // BUG: C time() is a wall-clock read too.
  [[nodiscard]] long stamp() {
    return static_cast<long>(time(nullptr));  // expect-lint: D3
  }
};

}  // namespace lint_fixture
