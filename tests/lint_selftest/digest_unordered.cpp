// lint.py --self-test fixture: D1 — unordered-container iteration feeding
// a digest.  NOT compiled; scanned by the determinism linter, which must
// flag every line carrying an `// expect-lint:` marker (and nothing else).
#include <cstdint>
#include <string>
#include <unordered_map>

namespace lint_fixture {

class StateDigest {
 public:
  void record(const std::string& key, std::uint64_t value) {
    counts_[key] += value;
  }

  // BUG: hash iteration order differs across libstdc++/libc++ and hash
  // seeds, so the digest is not reproducible.
  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t digest = 0;
    for (const auto& entry : counts_) {       // expect-lint: D1
      digest = digest * 31 + entry.second;
    }
    return digest;
  }

  // BUG: same hazard via explicit iterators.
  [[nodiscard]] std::string first_key() const {
    return counts_.begin()->first;            // expect-lint: D1
  }

 private:
  std::unordered_map<std::string, std::uint64_t> counts_;
};

}  // namespace lint_fixture
