// lint.py --self-test fixture: T1 — a SWB_GUARDED_BY field touched with
// no locking evidence.  NOT compiled; scanned by the determinism linter's
// regex mini-TSA (clang -Wthread-safety enforces the real contract).
#include "common/thread_annotations.hpp"

namespace lint_fixture {

class Tally {
 public:
  // OK: takes the guarding mutex first.
  void increment() {
    const switchboard::swb::MutexLock lock{mutex_};
    ++counter_;
  }

  // BUG: reads the guarded field without the mutex.
  [[nodiscard]] int racy_read() const {
    return counter_;                          // expect-lint: T1
  }

 private:
  mutable switchboard::swb::Mutex mutex_;
  int counter_ SWB_GUARDED_BY(mutex_){0};
};

}  // namespace lint_fixture
