// Chaos-soak harness (ctest label: chaos): seeded randomized fault
// interleavings — controller crash-with-amnesia, site crashes, partitions,
// message drop/duplicate/delay — driven by sim::ChaosSchedule against a
// durable deployment.  Two properties are asserted: (1) after the chaos
// window heals, a run that only suffered controller amnesia converges to
// the byte-identical end state of a fault-free reference run, and (2)
// under full chaos every layer's check_invariants() holds at each step
// and the surviving chains still deliver traffic.  The soak length is
// CI-tunable via SWB_CHAOS_SOAK_MS (simulated milliseconds of chaos;
// sanitizer jobs run it longer).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "sim/chaos_schedule.hpp"
#include "switchboard/switchboard.hpp"

namespace switchboard {
namespace {

using control::ChainSpec;
using core::DeploymentConfig;
using core::Middleware;

/// Simulated chaos-window length; CI's sanitizer soak raises it.
double soak_ms() {
  if (const char* env = std::getenv("SWB_CHAOS_SOAK_MS")) {
    const double parsed = std::atof(env);
    if (parsed > 0.0) return parsed;
  }
  return 1500.0;
}

dataplane::FiveTuple tuple(std::uint32_t i) {
  return dataplane::FiveTuple{0x0A030000u + i, 0xC0A80002u,
                              static_cast<std::uint16_t>(4000 + i), 443, 6};
}

/// Line A(0) - X(1) - Y(2) - B(3); firewall deployed at X and Y.
model::NetworkModel make_two_pool_model() {
  model::NetworkModel m{net::make_line_topology(4, 100.0, 5.0)};
  m.add_site(NodeId{0}, 100.0, "A");
  m.add_site(NodeId{1}, 100.0, "X");
  m.add_site(NodeId{2}, 100.0, "Y");
  m.add_site(NodeId{3}, 100.0, "B");
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, SiteId{1}, 100.0);
  m.deploy_vnf(fw, SiteId{2}, 100.0);
  return m;
}

ChainSpec make_span_spec(EdgeServiceId edge, VnfId fw, std::string name) {
  ChainSpec spec;
  spec.name = std::move(name);
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{3};
  spec.vnfs = {fw};
  spec.forward_traffic = 1.0;
  spec.reverse_traffic = 0.5;
  return spec;
}

/// Controller-side end-state fingerprint (chains, routes, weights, loads);
/// epochs and counters excluded — they legitimately differ across runs.
std::string state_digest(core::Deployment& dep,
                         const std::vector<ChainId>& chains) {
  std::ostringstream out;
  out << std::setprecision(17);
  for (const ChainId chain : chains) {
    const control::ChainRecord* rec = dep.global().find_record(chain);
    if (rec == nullptr) {
      out << "c" << chain.value() << "=absent\n";
      continue;
    }
    out << "c" << rec->id.value() << " active=" << rec->active;
    for (const control::RouteRecord& route : rec->routes) {
      out << " r" << route.id.value() << "@";
      for (const SiteId site : route.vnf_sites) out << site.value() << ",";
      out << "w=" << route.weight;
    }
    out << "\n";
  }
  const te::Loads& loads = dep.global().loads();
  const model::NetworkModel& m = dep.network_model();
  for (std::size_t e = 0; e < m.topology().link_count(); ++e) {
    out << "L" << e << "="
        << loads.link_load(LinkId{static_cast<std::uint32_t>(e)}) << "\n";
  }
  for (std::size_t s = 0; s < m.sites().size(); ++s) {
    const SiteId site{static_cast<std::uint32_t>(s)};
    out << "S" << s << "=" << loads.site_load(site);
    for (std::size_t f = 0; f < m.vnfs().size(); ++f) {
      out << " v" << f
          << "=" << loads.vnf_site_load(VnfId{static_cast<std::uint32_t>(f)},
                                        site);
    }
    out << "\n";
  }
  return out.str();
}

// ----------------------------------------------------- plan determinism

TEST(ChaosSchedule, SameSeedSameConfigDrawsTheIdenticalPlan) {
  auto plan = [](std::uint64_t seed) {
    sim::Simulator sim;
    sim::FaultInjector faults{sim, 1};
    faults.register_target("controller:global", [](bool) {});
    sim::ChaosConfig config;
    config.start = sim::from_ms(10.0);
    config.horizon = sim::from_ms(2000.0);
    config.mean_gap = sim::from_ms(150.0);
    config.min_outage = sim::from_ms(20.0);
    config.max_outage = sim::from_ms(120.0);
    config.crash_targets = {"controller:global"};
    config.partition_sites = {SiteId{0}, SiteId{1}, SiteId{2}};
    sim::ChaosSchedule chaos{sim, faults, config, seed};
    chaos.arm();
    chaos.check_invariants();
    EXPECT_EQ(chaos.crashes_planned() + chaos.partitions_planned(),
              chaos.plan().size());
    EXPECT_FALSE(chaos.plan().empty());
    return chaos.plan_string();
  };
  const std::string a = plan(42);
  EXPECT_EQ(a, plan(42));
  EXPECT_NE(a, plan(43));
}

TEST(ChaosSchedule, EveryOutageHealsBeforeTheHorizon) {
  sim::Simulator sim;
  sim::FaultInjector faults{sim, 1};
  faults.register_target("controller:global", [](bool) {});
  sim::ChaosConfig config;
  config.start = 0;
  config.horizon = sim::from_ms(500.0);
  config.mean_gap = sim::from_ms(40.0);
  config.min_outage = sim::from_ms(100.0);
  config.max_outage = sim::from_ms(900.0);   // longer than the window
  config.partition_weight = 0.0;
  config.crash_targets = {"controller:global"};
  sim::ChaosSchedule chaos{sim, faults, config, 7};
  chaos.arm();
  chaos.check_invariants();   // asserts heal-before-horizon per event
  sim.run_until(config.horizon);
  EXPECT_FALSE(faults.is_down("controller:global"));
}

// ------------------------------------------- soak A: amnesia convergence

// Repeated controller crash-with-amnesia plus message drop/duplicate/delay
// during the chaos window; after it heals, the deployment must land on the
// byte-identical controller state of a run that saw no faults at all.
TEST(ChaosSoak, AmnesiaUnderMessageChaosConvergesToFaultFreeReference) {
  const double window_ms = soak_ms();
  auto run = [window_ms](bool chaos_on) {
    model::NetworkModel m = make_two_pool_model();
    const VnfId fw = m.vnfs()[0].id;
    DeploymentConfig config;
    config.durable_controller = true;
    config.reliable_bus = true;
    Middleware mw{std::move(m), config};
    core::Deployment& dep = mw.deployment();

    const EdgeServiceId edge = mw.register_edge_service("vpn");
    std::vector<ChainId> chains;
    for (int i = 0; i < 2; ++i) {
      const auto r =
          mw.create_chain(make_span_spec(edge, fw, "c" + std::to_string(i)));
      EXPECT_TRUE(r.ok()) << r.error().to_string();
      chains.push_back(r->chain);
    }
    dep.register_fault_targets();

    const sim::SimTime t0 = dep.simulator().now();
    const sim::SimTime horizon = t0 + sim::from_ms(window_ms);
    sim::ChaosSchedule chaos{dep.simulator(),
                             dep.fault_injector(),
                             {.start = t0 + sim::from_ms(20.0),
                              .horizon = horizon,
                              .mean_gap = sim::from_ms(250.0),
                              .min_outage = sim::from_ms(40.0),
                              .max_outage = sim::from_ms(200.0),
                              .partition_weight = 0.0,
                              .crash_targets = {"controller:global"},
                              .partition_sites = {}},
                             0xC0FFEEULL};
    if (chaos_on) {
      sim::MessageFaultConfig message_faults;
      message_faults.drop_probability = 0.05;
      message_faults.duplicate_probability = 0.05;
      message_faults.delay_probability = 0.10;
      message_faults.max_extra_delay = sim::from_ms(15.0);
      dep.fault_injector().set_message_faults(message_faults);
      chaos.arm();
    }

    dep.simulator().run_until(horizon);
    if (chaos_on) {
      EXPECT_FALSE(dep.fault_injector().is_down("controller:global"));
      dep.fault_injector().set_message_faults({});
    }
    dep.simulator().run_until(horizon + sim::from_ms(1500.0));

    // Liveness after the heal-and-settle tail: both chains deliver.
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(chains.size());
         ++i) {
      const auto walk = mw.send(chains[i], tuple(i));
      EXPECT_TRUE(walk.delivered) << walk.failure;
    }
    dep.global().check_invariants();
    dep.state_journal()->check_invariants();
    dep.durable_store().check_invariants();
    dep.fault_injector().check_invariants();
    if (chaos_on) {
      EXPECT_GT(dep.global().epoch(), 1u)
          << "the chaos plan never crashed the controller";
    }
    return state_digest(dep, chains);
  };

  const std::string reference = run(false);
  const std::string chaotic = run(true);
  EXPECT_EQ(chaotic, reference);
}

// --------------------------------------------- soak B: invariants + liveness

// Full chaos — controller amnesia, a VNF-hosting site crashing (detector
// suspicion -> pool retire -> replacement -> restore), edge/controller
// partitions, and lossy messaging — with the whole recovery pipeline
// running.  Every layer's invariant audit must hold at every step, and
// after the tail settles the chains must still deliver end to end.
TEST(ChaosSoak, FullChaosKeepsInvariantsAndConvergesLive) {
  const double window_ms = soak_ms();
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config;
  config.durable_controller = true;
  config.reliable_bus = true;
  config.detector.period = sim::from_ms(50.0);
  config.detector.suspicion_threshold = 3;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  std::vector<ChainId> chains;
  for (int i = 0; i < 2; ++i) {
    const auto r =
        mw.create_chain(make_span_spec(edge, fw, "c" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    chains.push_back(r->chain);
  }
  dep.enable_recovery();

  const sim::SimTime t0 = dep.simulator().now();
  const sim::SimTime horizon = t0 + sim::from_ms(window_ms);
  // Victims: the controller (amnesia) and site Y (pool retire/restore).
  // Partitions pair the controller's site with the egress edge — lossy
  // control traffic without detaching a VNF pool, so liveness stays
  // provable after the heal.
  sim::ChaosSchedule chaos{dep.simulator(),
                           dep.fault_injector(),
                           {.start = t0 + sim::from_ms(20.0),
                            .horizon = horizon,
                            .mean_gap = sim::from_ms(300.0),
                            .min_outage = sim::from_ms(50.0),
                            .max_outage = sim::from_ms(250.0),
                            .crash_weight = 2.0,
                            .partition_weight = 1.0,
                            .crash_targets = {"controller:global", "site:2"},
                            .partition_sites = {SiteId{0}, SiteId{3}}},
                           0xDECAFULL};
  sim::MessageFaultConfig message_faults;
  message_faults.drop_probability = 0.02;
  message_faults.duplicate_probability = 0.05;
  message_faults.delay_probability = 0.10;
  message_faults.max_extra_delay = sim::from_ms(10.0);
  dep.fault_injector().set_message_faults(message_faults);
  chaos.arm();
  ASSERT_FALSE(chaos.plan().empty());

  // Step through the window auditing every layer at each step boundary.
  for (sim::SimTime at = t0; at < horizon; at += sim::from_ms(250.0)) {
    dep.simulator().run_until(at + sim::from_ms(250.0));
    dep.global().check_invariants();
    dep.failure_detector().check_invariants();
    dep.state_journal()->check_invariants();
    dep.durable_store().check_invariants();
    dep.fault_injector().check_invariants();
    chaos.check_invariants();
  }

  // Heal-and-settle tail: chaos is over (the schedule guarantees it),
  // message faults off, detector re-observes site Y, replacements finish.
  dep.fault_injector().set_message_faults({});
  dep.simulator().run_until(horizon + sim::from_ms(2000.0));
  dep.stop_recovery();

  EXPECT_FALSE(dep.fault_injector().is_down("controller:global"));
  EXPECT_FALSE(dep.fault_injector().is_down("site:2"));
  dep.global().check_invariants();
  dep.failure_detector().check_invariants();
  dep.state_journal()->check_invariants();

  // Liveness: every chain is active again and delivers a fresh flow.
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(chains.size());
       ++i) {
    const control::ChainRecord& rec = mw.chain_record(chains[i]);
    EXPECT_TRUE(rec.active) << "chain " << chains[i] << " never recovered";
    EXPECT_FALSE(rec.routes.empty());
    const auto walk = mw.send(chains[i], tuple(100 + i));
    EXPECT_TRUE(walk.delivered) << walk.failure;
  }
}

}  // namespace
}  // namespace switchboard
