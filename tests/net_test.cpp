#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/topology_gen.hpp"
#include "net/traffic_matrix.hpp"

namespace switchboard::net {
namespace {

// ---------------------------------------------------------------- Topology

TEST(Topology, AddNodesAndLinks) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const LinkId l = topo.add_link(a, b, 10.0, 5.0);
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_EQ(topo.link(l).src, a);
  EXPECT_EQ(topo.link(l).dst, b);
  EXPECT_DOUBLE_EQ(topo.link(l).capacity, 10.0);
  EXPECT_DOUBLE_EQ(topo.link(l).latency_ms, 5.0);
}

TEST(Topology, DuplexCreatesBothDirections) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  topo.add_duplex_link(a, b, 10.0, 5.0);
  EXPECT_EQ(topo.link_count(), 2u);
  EXPECT_EQ(topo.out_links(a).size(), 1u);
  EXPECT_EQ(topo.out_links(b).size(), 1u);
  EXPECT_EQ(topo.in_links(a).size(), 1u);
}

TEST(Topology, DistanceKm) {
  Topology topo;
  const NodeId a = topo.add_node("a", 0, 0);
  const NodeId b = topo.add_node("b", 3, 4);
  EXPECT_DOUBLE_EQ(topo.distance_km(a, b), 5.0);
}

// ----------------------------------------------------------------- Routing

TEST(Routing, LineTopologyDelays) {
  const Topology topo = make_line_topology(4, 10.0, 5.0);
  const Routing routing{topo};
  EXPECT_DOUBLE_EQ(routing.delay_ms(NodeId{0}, NodeId{3}), 15.0);
  EXPECT_DOUBLE_EQ(routing.delay_ms(NodeId{3}, NodeId{0}), 15.0);
  EXPECT_DOUBLE_EQ(routing.delay_ms(NodeId{1}, NodeId{1}), 0.0);
}

TEST(Routing, UnreachableIsInfinite) {
  Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  const Routing routing{topo};
  EXPECT_FALSE(routing.reachable(NodeId{0}, NodeId{1}));
  EXPECT_TRUE(std::isinf(routing.delay_ms(NodeId{0}, NodeId{1})));
}

TEST(Routing, SquareSplitsEcmpEvenly) {
  // a->c has two equal 2-hop paths (via b and via d); each link on those
  // paths should carry exactly half the traffic.
  const Topology topo = make_square_topology(10.0, 10.0);
  const Routing routing{topo};
  const NodeId a{0};
  const NodeId c{2};
  EXPECT_DOUBLE_EQ(routing.delay_ms(a, c), 20.0);
  const auto& shares = routing.link_shares(a, c);
  ASSERT_EQ(shares.size(), 4u);   // 2 paths x 2 links
  double total_first_hop = 0.0;
  for (const LinkShare& share : shares) {
    EXPECT_DOUBLE_EQ(share.fraction, 0.5);
    if (topo.link(share.link).src == a) total_first_hop += share.fraction;
  }
  EXPECT_DOUBLE_EQ(total_first_hop, 1.0);
}

TEST(Routing, LinkSharesConserveFlow) {
  const Topology topo = make_tier1_topology({});
  const Routing routing{topo};
  const NodeId src{0};
  for (std::size_t t = 1; t < topo.node_count(); ++t) {
    const NodeId dst{static_cast<NodeId::underlying_type>(t)};
    if (!routing.reachable(src, dst)) continue;
    // Net flow out of src must be 1; net flow into dst must be 1.
    double out_of_src = 0.0;
    double into_dst = 0.0;
    for (const LinkShare& share : routing.link_shares(src, dst)) {
      const Link& link = topo.link(share.link);
      if (link.src == src) out_of_src += share.fraction;
      if (link.dst == src) out_of_src -= share.fraction;
      if (link.dst == dst) into_dst += share.fraction;
      if (link.src == dst) into_dst -= share.fraction;
    }
    EXPECT_NEAR(out_of_src, 1.0, 1e-9) << "dst " << t;
    EXPECT_NEAR(into_dst, 1.0, 1e-9) << "dst " << t;
  }
}

TEST(Routing, ShortestPathEndpointsAndLength) {
  const Topology topo = make_line_topology(5, 10.0, 2.0);
  const Routing routing{topo};
  const auto path = routing.shortest_path(NodeId{0}, NodeId{4});
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), NodeId{0});
  EXPECT_EQ(path.back(), NodeId{4});
}

TEST(Routing, SelfPathIsTrivial) {
  const Topology topo = make_line_topology(3);
  const Routing routing{topo};
  const auto path = routing.shortest_path(NodeId{1}, NodeId{1});
  ASSERT_EQ(path.size(), 1u);
  EXPECT_TRUE(routing.link_shares(NodeId{1}, NodeId{1}).empty());
}

/// The parallel build must be byte-identical to the serial one: same
/// delays, same link shares, in the same order, for every thread count.
void expect_identical_routing(const Topology& topo, const Routing& serial,
                              const Routing& parallel) {
  const std::size_t n = topo.node_count();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      const NodeId src{static_cast<NodeId::underlying_type>(s)};
      const NodeId dst{static_cast<NodeId::underlying_type>(t)};
      const double a = serial.delay_ms(src, dst);
      const double b = parallel.delay_ms(src, dst);
      // Bit-equality (inf == inf holds; both sides run identical
      // arithmetic, so no tolerance is needed or wanted).
      ASSERT_EQ(a, b) << s << " -> " << t;
      const auto sa = serial.link_shares(src, dst);
      const auto sb = parallel.link_shares(src, dst);
      ASSERT_EQ(sa.size(), sb.size()) << s << " -> " << t;
      for (std::size_t i = 0; i < sa.size(); ++i) {
        ASSERT_EQ(sa[i].link, sb[i].link) << s << " -> " << t << " #" << i;
        ASSERT_EQ(sa[i].fraction, sb[i].fraction)
            << s << " -> " << t << " #" << i;
      }
    }
  }
}

TEST(Routing, ParallelBuildMatchesSerial) {
  Tier1Params params;
  params.core_count = 6;
  params.access_per_core = 3;
  for (const std::uint64_t seed : {7u, 11u, 42u}) {
    params.seed = seed;
    const Topology topo = make_tier1_topology(params);
    const Routing serial{topo, 1};
    for (const std::size_t threads : {2u, 4u, 7u}) {
      const Routing parallel{topo, threads};
      expect_identical_routing(topo, serial, parallel);
    }
  }
}

TEST(Routing, ParallelBuildMoreThreadsThanDestinations) {
  const Topology topo = make_square_topology(10.0, 10.0);
  const Routing serial{topo, 1};
  const Routing parallel{topo, 16};   // 16 workers, 4 destinations
  expect_identical_routing(topo, serial, parallel);
}

TEST(Routing, ShortestPathTieBreaksDeterministically) {
  // a->c has two equal-cost paths (via b = node 1, via d = node 3); the
  // walk must pick the smallest next-hop node id, i.e. go through b.
  const Topology topo = make_square_topology(10.0, 10.0);
  const Routing routing{topo};
  const auto path = routing.shortest_path(NodeId{0}, NodeId{2});
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], NodeId{1});
  // And repeated construction yields the same walk.
  const Routing again{topo};
  EXPECT_EQ(again.shortest_path(NodeId{0}, NodeId{2}), path);
}

// ------------------------------------------------------------ TopologyGen

TEST(TopologyGen, Tier1IsConnected) {
  Tier1Params params;
  params.core_count = 6;
  params.access_per_core = 3;
  const Topology topo = make_tier1_topology(params);
  EXPECT_EQ(topo.node_count(), 6u + 18u);
  const Routing routing{topo};
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    for (std::size_t j = 0; j < topo.node_count(); ++j) {
      EXPECT_TRUE(routing.reachable(
          NodeId{static_cast<NodeId::underlying_type>(i)},
          NodeId{static_cast<NodeId::underlying_type>(j)}))
          << i << " -> " << j;
    }
  }
}

TEST(TopologyGen, Tier1Deterministic) {
  Tier1Params params;
  params.seed = 42;
  const Topology a = make_tier1_topology(params);
  const Topology b = make_tier1_topology(params);
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t i = 0; i < a.link_count(); ++i) {
    const LinkId id{static_cast<LinkId::underlying_type>(i)};
    EXPECT_EQ(a.link(id).src, b.link(id).src);
    EXPECT_DOUBLE_EQ(a.link(id).capacity, b.link(id).capacity);
  }
}

TEST(TopologyGen, Tier1LatenciesArePositive) {
  const Topology topo = make_tier1_topology({});
  for (const Link& link : topo.links()) {
    EXPECT_GT(link.latency_ms, 0.0);
    EXPECT_GT(link.capacity, 0.0);
  }
}

TEST(TopologyGen, AccessPopsAreDualHomed) {
  Tier1Params params;
  params.core_count = 5;
  const Topology topo = make_tier1_topology(params);
  for (const Node& node : topo.nodes()) {
    if (node.name.rfind("pop", 0) == 0) {
      EXPECT_EQ(topo.out_links(node.id).size(), 2u) << node.name;
    }
  }
}

// ---------------------------------------------------------- TrafficMatrix

TEST(TrafficMatrix, SetAndGet) {
  TrafficMatrix tm{3};
  tm.set_demand(NodeId{0}, NodeId{1}, 5.0);
  tm.add_demand(NodeId{0}, NodeId{1}, 2.0);
  EXPECT_DOUBLE_EQ(tm.demand(NodeId{0}, NodeId{1}), 7.0);
  EXPECT_DOUBLE_EQ(tm.demand(NodeId{1}, NodeId{0}), 0.0);
  EXPECT_DOUBLE_EQ(tm.total(), 7.0);
  EXPECT_DOUBLE_EQ(tm.node_out_volume(NodeId{0}), 7.0);
}

TEST(TrafficMatrix, ScaleMultiplies) {
  TrafficMatrix tm{2};
  tm.set_demand(NodeId{0}, NodeId{1}, 4.0);
  tm.scale(0.5);
  EXPECT_DOUBLE_EQ(tm.demand(NodeId{0}, NodeId{1}), 2.0);
}

TEST(TrafficMatrix, GravityTotalsMatch) {
  const Topology topo = make_tier1_topology({});
  GravityParams params;
  params.total_volume = 500.0;
  const TrafficMatrix tm = make_gravity_matrix(topo, params);
  EXPECT_NEAR(tm.total(), 500.0, 1e-6);
}

TEST(TrafficMatrix, GravityDiagonalZero) {
  const Topology topo = make_tier1_topology({});
  const TrafficMatrix tm = make_gravity_matrix(topo, {});
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    const NodeId n{static_cast<NodeId::underlying_type>(i)};
    EXPECT_DOUBLE_EQ(tm.demand(n, n), 0.0);
  }
}

TEST(TrafficMatrix, GravityIsSkewed) {
  const Topology topo = make_tier1_topology({});
  GravityParams params;
  params.weight_sigma = 1.0;
  const TrafficMatrix tm = make_gravity_matrix(topo, params);
  double max_out = 0.0;
  double min_out = 1e18;
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    const double v =
        tm.node_out_volume(NodeId{static_cast<NodeId::underlying_type>(i)});
    max_out = std::max(max_out, v);
    min_out = std::min(min_out, v);
  }
  EXPECT_GT(max_out, 2.0 * min_out);   // heavy nodes dominate
}

}  // namespace
}  // namespace switchboard::net
