// SB-ANYCAST-D (DESIGN.md §17; ctest label: anycast): the decentralized
// chain-routing mode.  Covered here: announcement wire format, the
// visited-set loop-guard annotation, link-state flooding (split horizon,
// dedup, staleness aging), forwarding with the Global Switchboard crashed,
// controller-free re-convergence around instance kills, hop-budget loop
// prevention, seeded determinism of the steering/announcement traces, the
// FaultInjector's whole-site isolate/heal primitives, the ChaosSchedule
// heal_all() teardown for soaks that end mid-partition, and the failure
// detector's flap-debounce across a controller restart/resync boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/chaos_schedule.hpp"
#include "switchboard/switchboard.hpp"

namespace switchboard {
namespace {

using control::ChainSpec;
using core::DeploymentConfig;
using core::Middleware;

dataplane::FiveTuple tuple(std::uint32_t i) {
  return dataplane::FiveTuple{0x0A040000u + i, 0xC0A80002u,
                              static_cast<std::uint16_t>(5000 + i), 443, 6};
}

/// Line A(0) - X(1) - Y(2) - B(3); firewall deployed at X and Y.
model::NetworkModel make_two_pool_model() {
  model::NetworkModel m{net::make_line_topology(4, 100.0, 5.0)};
  m.add_site(NodeId{0}, 100.0, "A");
  m.add_site(NodeId{1}, 100.0, "X");
  m.add_site(NodeId{2}, 100.0, "Y");
  m.add_site(NodeId{3}, 100.0, "B");
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, SiteId{1}, 100.0);
  m.deploy_vnf(fw, SiteId{2}, 100.0);
  return m;
}

ChainSpec make_span_spec(EdgeServiceId edge, VnfId fw) {
  ChainSpec spec;
  spec.name = "span";
  spec.ingress_service = edge;
  spec.egress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_node = NodeId{3};
  spec.vnfs = {fw};
  spec.forward_traffic = 1.0;
  spec.reverse_traffic = 0.5;
  return spec;
}

// --------------------------------------------------------- wire format

TEST(AnycastMessage, SerializeParseRoundtrip) {
  control::AnycastAnnouncement a;
  a.origin = SiteId{3};
  a.seq = 42;
  a.path_delay_ms = 12.5;
  a.entries.push_back(control::AnycastVnfEntry{VnfId{0}, 2, 150.0});
  a.entries.push_back(control::AnycastVnfEntry{VnfId{4}, 1, 75.25});

  const auto parsed = control::parse_anycast(control::serialize(a));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->origin, SiteId{3});
  EXPECT_EQ(parsed->seq, 42u);
  EXPECT_DOUBLE_EQ(parsed->path_delay_ms, 12.5);
  ASSERT_EQ(parsed->entries.size(), 2u);
  EXPECT_EQ(parsed->entries[0].vnf, VnfId{0});
  EXPECT_EQ(parsed->entries[0].live_instances, 2u);
  EXPECT_DOUBLE_EQ(parsed->entries[0].residual_capacity, 150.0);
  EXPECT_EQ(parsed->entries[1].vnf, VnfId{4});
  EXPECT_EQ(parsed->entries[1].live_instances, 1u);
  EXPECT_DOUBLE_EQ(parsed->entries[1].residual_capacity, 75.25);

  // An announcement with no pools still carries origin + seq.
  control::AnycastAnnouncement empty;
  empty.origin = SiteId{0};
  empty.seq = 1;
  const auto parsed_empty = control::parse_anycast(control::serialize(empty));
  ASSERT_TRUE(parsed_empty.has_value());
  EXPECT_TRUE(parsed_empty->entries.empty());

  EXPECT_FALSE(control::parse_anycast("type=route;x=1").has_value());
  EXPECT_FALSE(control::parse_anycast("").has_value());
}

TEST(AnycastAnnotation, VisitedBitmapAndRangeGuard) {
  dataplane::AnycastAnnotation ann;
  EXPECT_FALSE(ann.visited(0));
  ann.mark_visited(0);
  ann.mark_visited(63);
  EXPECT_TRUE(ann.visited(0));
  EXPECT_TRUE(ann.visited(63));
  EXPECT_FALSE(ann.visited(5));
  // Site ids beyond the bitmap are ignored, never undefined behavior.
  ann.mark_visited(64);
  EXPECT_FALSE(ann.visited(64));
  EXPECT_FALSE(ann.visited(1000));
}

// ------------------------------------------------ flooding + table state

TEST(AnycastRouter, FloodBuildsTablesWithSplitHorizonAndAging) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config;
  config.enable_anycast = true;
  config.anycast.announce_period = sim::from_ms(20.0);
  config.anycast.stale_after_periods = 4;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto report = mw.create_chain(make_span_spec(edge, fw));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  const SiteId placed = mw.chain_record(report->chain).routes[0].vnf_sites[0];

  dep.register_fault_targets();
  dep.start_anycast();
  const sim::SimTime t0 = dep.simulator().now();
  dep.simulator().run_until(t0 + sim::from_ms(100.0));

  // Every other site learned the placed pool from the flood.
  for (std::uint32_t s = 0; s < 4; ++s) {
    control::AnycastRouter& router = dep.anycast_router(SiteId{s});
    const auto view = router.pool_view(placed, fw);
    ASSERT_TRUE(view.has_value()) << "site " << s << " never heard of pool";
    EXPECT_GE(view->live_instances, 1u);
    EXPECT_GT(router.announcements_sent(), 0u);
    EXPECT_GT(router.announcements_received(), 0u);
    router.check_invariants();
  }
  // Full-mesh flooding over 4 sites re-delivers every announcement along
  // multiple paths: split-horizon dedup must be doing real work.
  std::uint64_t dropped = 0;
  std::uint64_t refloods = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    dropped += dep.anycast_router(SiteId{s}).duplicates_dropped();
    refloods += dep.anycast_router(SiteId{s}).refloods();
  }
  EXPECT_GT(refloods, 0u);
  EXPECT_GT(dropped, 0u);

  // Crash the pool's site: its router goes silent and every peer ages the
  // entry out after stale_after_periods announce periods.
  dep.fault_injector().crash("site:" + std::to_string(placed.value()));
  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(200.0));
  EXPECT_FALSE(
      dep.anycast_router(SiteId{0}).pool_view(placed, fw).has_value())
      << "stale entry survived aging";

  // Restore: the next announcement refreshes the entry.
  dep.fault_injector().restore("site:" + std::to_string(placed.value()));
  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(60.0));
  EXPECT_TRUE(
      dep.anycast_router(SiteId{0}).pool_view(placed, fw).has_value());
  dep.stop_anycast();
  for (std::uint32_t s = 0; s < 4; ++s) {
    dep.anycast_router(SiteId{s}).check_invariants();
  }
}

// ------------------------------------ forwarding with the controller dead

TEST(AnycastForwarding, DeliversBothDirectionsWithControllerCrashed) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config;
  config.enable_anycast = true;
  config.anycast.announce_period = sim::from_ms(20.0);
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto report = mw.create_chain(make_span_spec(edge, fw));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  const ChainId chain = report->chain;

  dep.register_fault_targets();
  dep.start_anycast();
  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(100.0));

  dep.fault_injector().crash("controller:global");
  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(100.0));

  const auto forward = dep.inject_anycast(chain, tuple(1));
  EXPECT_TRUE(forward.delivered) << forward.failure;
  EXPECT_EQ(forward.vnf_instances().size(), 1u);
  EXPECT_GT(forward.latency_ms, 0.0);

  const auto reverse =
      dep.inject_anycast(chain, tuple(1), dataplane::Direction::kReverse);
  EXPECT_TRUE(reverse.delivered) << reverse.failure;
  EXPECT_EQ(reverse.vnf_instances().size(), 1u);
  dep.stop_anycast();
}

TEST(AnycastForwarding, ReconvergesAroundInstanceKillWithoutController) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config;
  config.enable_anycast = true;
  config.anycast.announce_period = sim::from_ms(20.0);
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto report = mw.create_chain(make_span_spec(edge, fw));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  const ChainId chain = report->chain;
  const SiteId primary = mw.chain_record(chain).routes[0].vnf_sites[0];
  const SiteId survivor = primary == SiteId{1} ? SiteId{2} : SiteId{1};
  // A second route pinned to the other pool site gives anycast a live
  // fallback instance population.
  const auto extra = mw.add_route(chain, {survivor});
  ASSERT_TRUE(extra.ok()) << extra.error().to_string();

  dep.register_fault_targets();
  dep.start_anycast();
  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(100.0));

  // Controller down for everything that follows.
  dep.fault_injector().crash("controller:global");

  // Kill the primary pool between announce ticks: remote tables still
  // advertise it.
  for (const dataplane::ElementId id :
       dep.elements().vnf_instances_at(primary, fw)) {
    dep.fault_injector().crash("element:" + std::to_string(id));
  }

  // First packet rides the stale table: it reaches the dead site, the
  // site's own fresh view refutes the entry, and the walk re-steers to
  // the survivor — delivered, at the cost of the detour hop.
  const auto detour = dep.inject_anycast(chain, tuple(7));
  ASSERT_TRUE(detour.delivered) << detour.failure;
  ASSERT_EQ(detour.vnf_instances().size(), 1u);
  EXPECT_EQ(dep.elements().info(detour.vnf_instances()[0]).site, survivor);

  // After the next announcements the ingress router knows the pool is
  // dead and steers straight to the survivor: re-convergence without any
  // controller involvement.
  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(100.0));
  const auto view = dep.anycast_router(SiteId{0}).pool_view(primary, fw);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->live_instances, 0u);

  const auto direct = dep.inject_anycast(chain, tuple(8));
  ASSERT_TRUE(direct.delivered) << direct.failure;
  ASSERT_EQ(direct.vnf_instances().size(), 1u);
  EXPECT_EQ(dep.elements().info(direct.vnf_instances()[0]).site, survivor);
  // On the line topology the dead site lies en route to the survivor, so
  // latency ties — but the converged walk visits strictly fewer sites.
  EXPECT_LT(direct.path.size(), detour.path.size())
      << "converged steering should skip the detour";
  EXPECT_LE(direct.latency_ms, detour.latency_ms);
  EXPECT_TRUE(dep.fault_injector().is_down("controller:global"));
  dep.stop_anycast();
}

TEST(AnycastForwarding, HopBudgetExhaustionDropsInsteadOfLooping) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config;
  config.enable_anycast = true;
  config.anycast.announce_period = sim::from_ms(20.0);
  // One wide-area hop is not enough for ingress -> pool -> egress.
  config.anycast.hop_budget = 1;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto report = mw.create_chain(make_span_spec(edge, fw));
  ASSERT_TRUE(report.ok()) << report.error().to_string();

  dep.start_anycast();
  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(100.0));

  const auto walk = dep.inject_anycast(report->chain, tuple(3));
  EXPECT_FALSE(walk.delivered);
  EXPECT_NE(walk.failure.find("hop budget"), std::string::npos)
      << walk.failure;
  dep.stop_anycast();
}

// ------------------------------------------------------- determinism

TEST(AnycastDeterminism, IdenticalRunsProduceIdenticalTracesAndDigests) {
  auto run = [] {
    model::NetworkModel m = make_two_pool_model();
    const VnfId fw = m.vnfs()[0].id;
    DeploymentConfig config;
    config.enable_anycast = true;
    config.anycast.announce_period = sim::from_ms(20.0);
    Middleware mw{std::move(m), config};
    core::Deployment& dep = mw.deployment();

    const EdgeServiceId edge = mw.register_edge_service("vpn");
    const auto report = mw.create_chain(make_span_spec(edge, fw));
    EXPECT_TRUE(report.ok());
    const ChainId chain = report->chain;
    const SiteId primary = mw.chain_record(chain).routes[0].vnf_sites[0];
    const SiteId survivor = primary == SiteId{1} ? SiteId{2} : SiteId{1};
    const auto extra = mw.add_route(chain, {survivor});
    EXPECT_TRUE(extra.ok());

    dep.register_fault_targets();
    dep.start_anycast();
    dep.simulator().run_until(dep.simulator().now() + sim::from_ms(80.0));
    dep.fault_injector().crash("controller:global");
    for (const dataplane::ElementId id :
         dep.elements().vnf_instances_at(primary, fw)) {
      dep.fault_injector().crash("element:" + std::to_string(id));
    }
    for (std::uint32_t i = 0; i < 8; ++i) {
      dep.inject_anycast(chain, tuple(i));
      dep.simulator().run_until(dep.simulator().now() + sim::from_ms(10.0));
    }
    dep.stop_anycast();

    std::string out = dep.fault_injector().trace_string();
    for (std::uint32_t s = 0; s < 4; ++s) {
      control::AnycastRouter& router = dep.anycast_router(SiteId{s});
      out += router.trace_string();
      out += "digest=" + std::to_string(router.trace_digest()) + "\n";
      router.check_invariants();
    }
    return out;
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("steer"), std::string::npos);
  EXPECT_NE(a.find("recv"), std::string::npos);
}

// ------------------------------------- FaultInjector isolate/heal (whole site)

TEST(FaultInjectorIsolate, IsolateHealAreIdempotentAndPairwiseComplete) {
  sim::Simulator sim;
  sim::FaultInjector faults{sim, 9};
  faults.set_site_count(4);

  faults.isolate_site(SiteId{1});
  for (const std::uint32_t s : {0u, 2u, 3u}) {
    EXPECT_TRUE(faults.partitioned(SiteId{1}, SiteId{s}));
  }
  EXPECT_FALSE(faults.partitioned(SiteId{0}, SiteId{2}));

  const std::string once = faults.trace_string();
  faults.isolate_site(SiteId{1});   // idempotent: records nothing new
  EXPECT_EQ(faults.trace_string(), once);

  faults.heal_site(SiteId{1});
  for (const std::uint32_t s : {0u, 2u, 3u}) {
    EXPECT_FALSE(faults.partitioned(SiteId{1}, SiteId{s}));
  }
  const std::string healed = faults.trace_string();
  faults.heal_site(SiteId{1});   // idempotent again
  EXPECT_EQ(faults.trace_string(), healed);

  // heal_site also clears partitions created pairwise.
  faults.partition_sites(SiteId{0}, SiteId{2});
  faults.heal_site(SiteId{2});
  EXPECT_FALSE(faults.partitioned(SiteId{0}, SiteId{2}));
  faults.check_invariants();
}

TEST(FaultInjectorIsolate, SeededRunsReplayByteIdenticalTraces) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    sim::FaultInjector faults{sim, seed};
    faults.set_site_count(5);
    sim::MessageFaultConfig message_faults;
    message_faults.drop_probability = 0.2;
    faults.set_message_faults(message_faults);
    faults.isolate_site(SiteId{2});
    for (std::uint32_t i = 0; i < 200; ++i) {
      faults.on_message(SiteId{i % 5}, SiteId{(i + 2) % 5},
                        "/t" + std::to_string(i % 3));
    }
    faults.heal_site(SiteId{2});
    faults.isolate_site(SiteId{4});
    for (std::uint32_t i = 0; i < 200; ++i) {
      faults.on_message(SiteId{i % 5}, SiteId{(i + 1) % 5}, "/u");
    }
    faults.check_invariants();
    return faults.trace_string();
  };
  const std::string a = run(11);
  EXPECT_EQ(a, run(11));
  EXPECT_NE(a, run(12));
}

// ------------------------------------------- ChaosSchedule heal_all teardown

TEST(ChaosSchedule, HealAllAtHorizonConvergesASoakThatEndsMidOutage) {
  sim::Simulator sim;
  sim::FaultInjector faults{sim, 3};
  faults.set_site_count(3);
  faults.register_target("controller:global", [](bool) {});
  faults.register_target("element:9", [](bool) {});

  sim::ChaosConfig config;
  config.start = 0;
  config.horizon = sim::from_ms(400.0);
  config.mean_gap = sim::from_ms(60.0);
  // Every outage outlives the horizon: the soak *ends mid-outage* and
  // only the heal_all() teardown converges it.
  config.min_outage = sim::from_ms(500.0);
  config.max_outage = sim::from_ms(900.0);
  config.clamp_outages = false;
  config.heal_all_at_horizon = true;
  config.crash_targets = {"controller:global"};
  config.partition_sites = {SiteId{0}, SiteId{1}, SiteId{2}};
  sim::ChaosSchedule chaos{sim, faults, config, 21};
  chaos.arm();
  chaos.check_invariants();   // must not demand heal-before-horizon here
  ASSERT_FALSE(chaos.plan().empty());

  // A fault the *test* injected is not the schedule's to heal.
  faults.crash("element:9");

  sim.run_until(config.horizon - 1);
  bool outage_active = faults.is_down("controller:global");
  for (std::uint32_t a = 0; a < 3; ++a) {
    for (std::uint32_t b = a + 1; b < 3; ++b) {
      outage_active = outage_active || faults.partitioned(SiteId{a}, SiteId{b});
    }
  }
  EXPECT_TRUE(outage_active) << "soak never entered its mid-outage tail";

  sim.run_until(config.horizon + 1);
  EXPECT_FALSE(faults.is_down("controller:global"));
  for (std::uint32_t a = 0; a < 3; ++a) {
    for (std::uint32_t b = a + 1; b < 3; ++b) {
      EXPECT_FALSE(faults.partitioned(SiteId{a}, SiteId{b}));
    }
  }
  EXPECT_TRUE(faults.is_down("element:9"))
      << "heal_all touched an outage the schedule did not cause";
  faults.check_invariants();

  // The drawn restores beyond the horizon are idempotent no-ops.
  sim.run_until(config.horizon + sim::from_ms(1000.0));
  faults.check_invariants();
}

// --------------------- detector flap debounce across a controller restart

// A flapping element around a controller crash/restore (amnesia +
// detector resync) must not fire on_instance_down at all, and a
// persistently-dead element is re-reported exactly once to the fresh
// incarnation — never once per beat.
TEST(FailureDetectorRestart, FlapDebounceAndResyncNeverDoubleFire) {
  model::NetworkModel m = make_two_pool_model();
  const VnfId fw = m.vnfs()[0].id;
  DeploymentConfig config;
  config.durable_controller = true;
  config.detector.period = sim::from_ms(50.0);
  config.detector.suspicion_threshold = 3;
  ASSERT_EQ(config.detector.element_debounce_beats, 2u);
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();

  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto report = mw.create_chain(make_span_spec(edge, fw));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  const ChainId chain = report->chain;
  const SiteId placed = mw.chain_record(chain).routes[0].vnf_sites[0];

  dep.enable_recovery();
  // Count every relay, then forward like enable_recovery()'s own wiring.
  std::map<dataplane::ElementId, int> fired;
  dep.failure_detector().set_element_down_callback(
      [&dep, &fired](dataplane::ElementId element, SiteId site) {
        ++fired[element];
        const control::ElementInfo& info = dep.elements().info(element);
        if (info.type == control::ElementType::kVnfInstance) {
          dep.global().on_instance_down(info.vnf, site);
        }
      });

  const std::vector<dataplane::ElementId> pool =
      dep.elements().vnf_instances_at(placed, fw);
  ASSERT_FALSE(pool.empty());
  const sim::SimTime t0 = dep.simulator().now();

  // Phase 1: a one-beat flap spanning a controller restart.  The restart's
  // resync() clears debounce streaks — the flap must still not fire.
  for (const dataplane::ElementId id : pool) {
    dep.fault_injector().crash_at(t0 + sim::from_ms(60.0),
                                  "element:" + std::to_string(id));
    dep.fault_injector().restore_at(t0 + sim::from_ms(120.0),
                                    "element:" + std::to_string(id));
  }
  dep.fault_injector().crash_at(t0 + sim::from_ms(70.0), "controller:global");
  dep.fault_injector().restore_at(t0 + sim::from_ms(200.0),
                                  "controller:global");
  dep.simulator().run_until(t0 + sim::from_ms(600.0));
  EXPECT_TRUE(fired.empty()) << "a debounced flap fired across the restart";
  EXPECT_GT(dep.global().epoch(), 1u) << "restart never happened";

  // Phase 2: a sustained failure fires once, the controller restarts, and
  // resync re-reports it exactly once to the new incarnation.
  const sim::SimTime t1 = dep.simulator().now();
  for (const dataplane::ElementId id : pool) {
    dep.fault_injector().crash("element:" + std::to_string(id));
  }
  dep.simulator().run_until(t1 + sim::from_ms(600.0));
  for (const dataplane::ElementId id : pool) {
    EXPECT_EQ(fired[id], 1) << "element " << id;
  }

  dep.fault_injector().crash("controller:global");
  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(150.0));
  dep.fault_injector().restore("controller:global");
  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(600.0));
  for (const dataplane::ElementId id : pool) {
    EXPECT_EQ(fired[id], 2)
        << "element " << id
        << " must be re-reported exactly once after resync";
  }

  // Many more beats: the dedup set holds, nothing re-fires.
  dep.simulator().run_until(dep.simulator().now() + sim::from_ms(1000.0));
  dep.stop_recovery();
  for (const dataplane::ElementId id : pool) {
    EXPECT_EQ(fired[id], 2) << "element " << id << " fired per beat";
  }
  dep.failure_detector().check_invariants();
  dep.global().check_invariants();
}

}  // namespace
}  // namespace switchboard
