#include <gtest/gtest.h>

#include <cmath>

#include "model/network_model.hpp"
#include "model/scenario.hpp"
#include "net/topology_gen.hpp"
#include "te/baselines.hpp"
#include "te/capacity_planning.hpp"
#include "te/dp_routing.hpp"
#include "te/evaluator.hpp"
#include "te/loads.hpp"
#include "te/lp_routing.hpp"
#include "te/routing_solution.hpp"

namespace switchboard::te {
namespace {

using model::Chain;
using model::NetworkModel;

/// Line A(0) - M(1) - B(2), 5 ms per hop; one VNF deployed at two sites.
/// Chain ingress A -> vnf -> egress B.
struct LineFixture {
  NetworkModel m{net::make_line_topology(3, 10.0, 5.0)};
  SiteId site_a;
  SiteId site_m;
  SiteId site_b;
  VnfId fw;
  ChainId chain;

  explicit LineFixture(double cap_m = 100.0, double cap_b = 100.0,
                       double traffic = 2.0) {
    site_a = m.add_site(NodeId{0}, 1000.0, "A");
    site_m = m.add_site(NodeId{1}, 1000.0, "M");
    site_b = m.add_site(NodeId{2}, 1000.0, "B");
    fw = m.add_vnf("fw", 1.0);
    m.deploy_vnf(fw, site_m, cap_m);
    m.deploy_vnf(fw, site_b, cap_b);
    Chain c;
    c.ingress = NodeId{0};
    c.egress = NodeId{2};
    c.vnfs = {fw};
    c.forward_traffic = {traffic, traffic};
    c.reverse_traffic = {0.0, 0.0};
    chain = m.add_chain(std::move(c));
  }
};

// ------------------------------------------------------------ ChainRouting

TEST(ChainRouting, AddAndMergeFlows) {
  ChainRouting r{1};
  r.init_chain(ChainId{0}, 2);
  r.add_flow(ChainId{0}, 1, NodeId{0}, NodeId{1}, 0.4);
  r.add_flow(ChainId{0}, 1, NodeId{0}, NodeId{1}, 0.2);
  r.add_flow(ChainId{0}, 1, NodeId{0}, NodeId{2}, 0.4);
  ASSERT_EQ(r.flows(ChainId{0}, 1).size(), 2u);
  EXPECT_NEAR(r.carried_fraction(ChainId{0}, 1), 1.0, 1e-12);
}

TEST(ChainRouting, ClearChain) {
  ChainRouting r{1};
  r.init_chain(ChainId{0}, 2);
  r.add_flow(ChainId{0}, 1, NodeId{0}, NodeId{1}, 1.0);
  r.clear_chain(ChainId{0});
  EXPECT_TRUE(r.flows(ChainId{0}, 1).empty());
}

TEST(ChainRouting, ZeroFractionIgnored) {
  ChainRouting r{1};
  r.init_chain(ChainId{0}, 1);
  r.add_flow(ChainId{0}, 1, NodeId{0}, NodeId{1}, 0.0);
  EXPECT_TRUE(r.flows(ChainId{0}, 1).empty());
}

// -------------------------------------------------------------------- Loads

TEST(Loads, VnfLoadCountsBothDirections) {
  LineFixture fx;
  Loads loads{fx.m};
  const Chain& chain = fx.m.chain(fx.chain);
  // Full traffic A -> M (stage 1), then M -> B (stage 2).
  loads.add_stage_flow(chain, 1, NodeId{0}, NodeId{1}, 1.0);
  loads.add_stage_flow(chain, 2, NodeId{1}, NodeId{2}, 1.0);
  // VNF load at M: l_f * (in 2.0 + out 2.0) = 4.0 (Eq. 4).
  EXPECT_NEAR(loads.vnf_site_load(fx.fw, fx.site_m), 4.0, 1e-12);
  EXPECT_NEAR(loads.site_load(fx.site_m), 4.0, 1e-12);
  EXPECT_NEAR(loads.site_load(fx.site_b), 0.0, 1e-12);
}

TEST(Loads, LinkLoadFollowsEcmpShares) {
  LineFixture fx;
  Loads loads{fx.m};
  const Chain& chain = fx.m.chain(fx.chain);
  loads.add_stage_flow(chain, 1, NodeId{0}, NodeId{1}, 0.5);
  // Stage-1 forward traffic = 2.0; half of it = 1.0 on the A->M link.
  double am_load = 0.0;
  for (const net::Link& link : fx.m.topology().links()) {
    if (link.src == NodeId{0} && link.dst == NodeId{1}) {
      am_load = loads.link_load(link.id);
    }
  }
  EXPECT_NEAR(am_load, 1.0, 1e-12);
}

TEST(Loads, ReverseTrafficUsesReverseLinks) {
  LineFixture fx;
  fx.m.chain_mutable(fx.chain).reverse_traffic = {1.0, 1.0};
  Loads loads{fx.m};
  const Chain& chain = fx.m.chain(fx.chain);
  loads.add_stage_flow(chain, 1, NodeId{0}, NodeId{1}, 1.0);
  double ma_load = 0.0;   // reverse direction M->A
  for (const net::Link& link : fx.m.topology().links()) {
    if (link.src == NodeId{1} && link.dst == NodeId{0}) {
      ma_load = loads.link_load(link.id);
    }
  }
  EXPECT_NEAR(ma_load, 1.0, 1e-12);
}

TEST(Loads, NegativeFractionRemovesLoad) {
  LineFixture fx;
  Loads loads{fx.m};
  const Chain& chain = fx.m.chain(fx.chain);
  loads.add_stage_flow(chain, 1, NodeId{0}, NodeId{1}, 1.0);
  loads.add_stage_flow(chain, 1, NodeId{0}, NodeId{1}, -1.0);
  EXPECT_NEAR(loads.vnf_site_load(fx.fw, fx.site_m), 0.0, 1e-12);
}

TEST(Loads, HeadroomRespectsMluAndBackground) {
  LineFixture fx;
  fx.m.set_mlu_limit(0.5);
  const LinkId first{0};
  fx.m.set_background_traffic(first, 2.0);
  Loads loads{fx.m};
  // Capacity 10, MLU 0.5 -> budget 5; background 2 -> headroom 3.
  EXPECT_NEAR(loads.link_headroom(first), 3.0, 1e-12);
}

// --------------------------------------------------------------- Evaluator

TEST(Evaluator, LatencyOfSingleRoute) {
  LineFixture fx;
  ChainRouting r{1};
  r.init_chain(fx.chain, 2);
  r.add_flow(fx.chain, 1, NodeId{0}, NodeId{1}, 1.0);
  r.add_flow(fx.chain, 2, NodeId{1}, NodeId{2}, 1.0);
  const RoutingMetrics metrics = evaluate(fx.m, r);
  // Both stages carry 2.0 units over 5 ms each.
  EXPECT_NEAR(metrics.mean_latency_ms, 5.0, 1e-9);
  EXPECT_NEAR(metrics.carried_volume, 4.0, 1e-9);
  EXPECT_TRUE(metrics.feasible);
}

TEST(Evaluator, UniformScaleDetectsBottleneck) {
  LineFixture fx{/*cap_m=*/8.0, /*cap_b=*/100.0};
  ChainRouting r{1};
  r.init_chain(fx.chain, 2);
  r.add_flow(fx.chain, 1, NodeId{0}, NodeId{1}, 1.0);
  r.add_flow(fx.chain, 2, NodeId{1}, NodeId{2}, 1.0);
  const RoutingMetrics metrics = evaluate(fx.m, r);
  // VNF load at M = 4.0 against capacity 8.0 -> scale 2; links: stage
  // traffic 2 on capacity-10 links -> scale 5.  Min is 2.
  EXPECT_NEAR(metrics.max_uniform_scale, 2.0, 1e-9);
}

TEST(Evaluator, InfeasibleWhenOverloaded) {
  LineFixture fx{/*cap_m=*/1.0, /*cap_b=*/100.0};
  ChainRouting r{1};
  r.init_chain(fx.chain, 2);
  r.add_flow(fx.chain, 1, NodeId{0}, NodeId{1}, 1.0);
  r.add_flow(fx.chain, 2, NodeId{1}, NodeId{2}, 1.0);
  const RoutingMetrics metrics = evaluate(fx.m, r);
  EXPECT_FALSE(metrics.feasible);
  EXPECT_LT(metrics.max_uniform_scale, 1.0);
  EXPECT_LT(metrics.feasible_throughput, metrics.carried_volume);
}

// -------------------------------------------------------------------- SB-LP

TEST(LpRouting, PicksVnfOnPath) {
  // VNF at M (on the A-B path) and at B; min-latency routing must place
  // the VNF at M or B — both give 10 ms total; never more.
  LineFixture fx;
  const LpRoutingResult r = solve_lp_routing(fx.m, {});
  ASSERT_TRUE(r.optimal());
  const RoutingMetrics metrics = evaluate(fx.m, r.routing);
  EXPECT_NEAR(metrics.mean_latency_ms, 5.0, 1e-6);
  EXPECT_NEAR(metrics.carried_volume, 4.0, 1e-6);
}

TEST(LpRouting, AvoidsOffPathVnfWhenCloserExists) {
  // Deploy the VNF at A (ingress site) too; routing via A costs 0 + 10,
  // same aggregate; but deploy at distant-only site forces detour.
  NetworkModel m{net::make_line_topology(4, 10.0, 5.0)};
  const SiteId s3 = m.add_site(NodeId{3}, 1000.0, "far");
  const SiteId s1 = m.add_site(NodeId{1}, 1000.0, "near");
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, s3, 100.0);
  m.deploy_vnf(fw, s1, 100.0);
  Chain c;
  c.ingress = NodeId{0};
  c.egress = NodeId{2};
  c.vnfs = {fw};
  c.forward_traffic = {1.0, 1.0};
  c.reverse_traffic = {0.0, 0.0};
  m.add_chain(std::move(c));
  const LpRoutingResult r = solve_lp_routing(m, {});
  ASSERT_TRUE(r.optimal());
  // Via node1: 5 + 5 = 10 ms route; via node3: 15 + 10 = 25 ms.
  const RoutingMetrics metrics = evaluate(m, r.routing);
  EXPECT_NEAR(metrics.mean_latency_ms, 5.0, 1e-6);
}

TEST(LpRouting, SplitsWhenCapacityForcesIt) {
  // VNF capacity at M covers only half the chain load; LP must split
  // between M and B to stay feasible.  VNF load if fully at M would be
  // 4.0 in + 4.0 out = 8 > capacity 4.
  LineFixture fx{/*cap_m=*/4.0, /*cap_b=*/100.0, /*traffic=*/4.0};
  const LpRoutingResult r = solve_lp_routing(fx.m, {});
  ASSERT_TRUE(r.optimal());
  const RoutingMetrics metrics = evaluate(fx.m, r.routing);
  EXPECT_TRUE(metrics.feasible);
  // Some traffic must reach the VNF at B.
  double to_b = 0.0;
  for (const StageFlow& f : r.routing.flows(fx.chain, 1)) {
    if (f.dst == NodeId{2}) to_b += f.fraction;
  }
  EXPECT_GT(to_b, 0.4);
}

TEST(LpRouting, InfeasibleWhenDemandExceedsAllCapacity) {
  LineFixture fx{/*cap_m=*/1.0, /*cap_b=*/1.0, /*traffic=*/10.0};
  const LpRoutingResult r = solve_lp_routing(fx.m, {});
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

TEST(LpRouting, MaxThroughputCarriesWhatFits) {
  LineFixture fx{/*cap_m=*/4.0, /*cap_b=*/4.0, /*traffic=*/10.0};
  LpRoutingOptions options;
  options.objective = LpObjective::kMaxThroughput;
  const LpRoutingResult r = solve_lp_routing(fx.m, options);
  ASSERT_TRUE(r.optimal());
  // Each site supports load 4 = in+out traffic -> 2 units of traffic each;
  // total carriable = 4 of 10 -> carried fraction 0.4 of 20 volume = 8.
  EXPECT_NEAR(r.carried_volume, 8.0, 1e-5);
  const RoutingMetrics metrics = evaluate(fx.m, r.routing);
  EXPECT_TRUE(metrics.feasible);
}

TEST(LpRouting, MaxUniformScaleMatchesHandComputation) {
  LineFixture fx{/*cap_m=*/4.0, /*cap_b=*/4.0, /*traffic=*/1.0};
  LpRoutingOptions options;
  options.objective = LpObjective::kMaxUniformScale;
  const LpRoutingResult r = solve_lp_routing(fx.m, options);
  ASSERT_TRUE(r.optimal());
  // Compute allows alpha 4 (two sites x 2 traffic units each vs demand 1);
  // but links: stage traffic alpha on capacity-10 links... A->M carries
  // stage1, M->B stage2 (if split, less).  Expect alpha >= 4 bounded by
  // link A->M carrying alpha*1 <= 10 -> alpha <= 10 if VNF at M...
  EXPECT_NEAR(r.alpha, 4.0, 1e-5);
}

TEST(LpRouting, FlowConservationProperty) {
  model::ScenarioParams params;
  params.chain_count = 12;
  params.vnf_count = 6;
  params.coverage = 0.4;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;
  params.total_chain_traffic = 40.0;   // light load: keep the LP feasible
  NetworkModel m = model::make_scenario(params);
  const LpRoutingResult r = solve_lp_routing(m, {});
  if (!r.optimal()) GTEST_SKIP() << "random instance infeasible";
  for (const Chain& chain : m.chains()) {
    // Per-site conservation at each intermediate stage.
    for (std::size_t z = 1; z < chain.stage_count(); ++z) {
      for (const model::StageEndpoint& ep : m.stage_destinations(chain, z)) {
        double in = 0.0;
        double out = 0.0;
        for (const StageFlow& f : r.routing.flows(chain.id, z)) {
          if (f.dst == ep.node) in += f.fraction;
        }
        for (const StageFlow& f : r.routing.flows(chain.id, z + 1)) {
          if (f.src == ep.node) out += f.fraction;
        }
        EXPECT_NEAR(in, out, 1e-6);
      }
    }
    EXPECT_NEAR(r.routing.carried_fraction(chain.id, 1), 1.0, 1e-6);
  }
}

// -------------------------------------------------------------------- SB-DP

TEST(DpRouting, RoutesSimpleChain) {
  LineFixture fx;
  const DpResult r = solve_dp_routing(fx.m);
  EXPECT_EQ(r.fully_routed_chains, 1u);
  const RoutingMetrics metrics = evaluate(fx.m, r.routing);
  EXPECT_TRUE(metrics.feasible);
  EXPECT_NEAR(metrics.mean_latency_ms, 5.0, 1e-9);
}

TEST(DpRouting, ResidualReRoutingSplitsAcrossSites) {
  // Capacity at M fits only half (load 8 vs cap 4); DP must route the
  // rest via B.
  LineFixture fx{/*cap_m=*/4.0, /*cap_b=*/100.0, /*traffic=*/4.0};
  const DpResult r = solve_dp_routing(fx.m);
  EXPECT_EQ(r.fully_routed_chains, 1u);
  const RoutingMetrics metrics = evaluate(fx.m, r.routing);
  EXPECT_TRUE(metrics.feasible);
  EXPECT_NEAR(r.routed_volume, r.demand_volume, 1e-9);
  // Both deployments used.
  const Loads loads = accumulate_loads(fx.m, r.routing);
  EXPECT_GT(loads.vnf_site_load(fx.fw, fx.site_m), 0.0);
  EXPECT_GT(loads.vnf_site_load(fx.fw, fx.site_b), 0.0);
}

TEST(DpRouting, NeverExceedsCapacity) {
  model::ScenarioParams params;
  params.chain_count = 40;
  params.vnf_count = 8;
  params.coverage = 0.4;
  params.total_chain_traffic = 2000.0;   // heavy: forces admission control
  params.site_capacity = 300.0;
  const NetworkModel m = model::make_scenario(params);
  const DpResult r = solve_dp_routing(m);
  const RoutingMetrics metrics = evaluate(m, r.routing);
  EXPECT_TRUE(metrics.feasible) << "DP admitted beyond capacity";
  // Switchboard's own load never exceeds the per-link MLU budget left
  // after background traffic (background alone may exceed the MLU —
  // that is the underlay's problem, not the chain router's).
  const Loads loads = accumulate_loads(m, r.routing);
  for (const net::Link& link : m.topology().links()) {
    const double budget = m.mlu_limit() * link.capacity -
                          m.background_traffic(link.id);
    EXPECT_LE(loads.link_load(link.id), std::max(0.0, budget) + 1e-6);
  }
}

TEST(DpRouting, PartialDemandAccounted) {
  LineFixture fx{/*cap_m=*/2.0, /*cap_b=*/2.0, /*traffic=*/10.0};
  const DpResult r = solve_dp_routing(fx.m);
  EXPECT_EQ(r.fully_routed_chains, 0u);
  EXPECT_GT(r.routed_volume, 0.0);
  EXPECT_LT(r.routed_volume, r.demand_volume);
}

TEST(DpRouting, LatencyVariantIgnoresLoad) {
  // DP-LATENCY keeps choosing the nearest site even when it is loaded;
  // SB-DP shifts away.  With two chains and a tight VNF at M, SB-DP should
  // route the second chain's VNF at B.
  LineFixture fx{/*cap_m=*/8.0, /*cap_b=*/100.0, /*traffic=*/2.0};
  Chain c2;
  c2.ingress = NodeId{0};
  c2.egress = NodeId{2};
  c2.vnfs = {fx.fw};
  c2.forward_traffic = {2.0, 2.0};
  c2.reverse_traffic = {0.0, 0.0};
  fx.m.add_chain(std::move(c2));

  DpOptions latency_only;
  latency_only.use_utilization_costs = false;
  const DpResult dp_lat = solve_dp_routing(fx.m, latency_only);
  const DpResult dp_full = solve_dp_routing(fx.m, {});

  const Loads loads_lat = accumulate_loads(fx.m, dp_lat.routing);
  const Loads loads_full = accumulate_loads(fx.m, dp_full.routing);
  // Latency-only crams everything into M (capacity 8 fits both chains'
  // 8.0 load exactly); utilization-aware spreads.
  EXPECT_GE(loads_lat.vnf_site_load(fx.fw, fx.site_m),
            loads_full.vnf_site_load(fx.fw, fx.site_m) - 1e-9);
}

TEST(DpRouting, CloseToLpOnScenario) {
  model::ScenarioParams params;
  params.chain_count = 10;
  params.vnf_count = 5;
  params.coverage = 0.5;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;
  params.total_chain_traffic = 100.0;
  const NetworkModel m = model::make_scenario(params);

  const LpRoutingResult lp = solve_lp_routing(m, {});
  const DpResult dp = solve_dp_routing(m);
  if (!lp.optimal()) GTEST_SKIP() << "LP infeasible on this instance";

  const RoutingMetrics lp_metrics = evaluate(m, lp.routing);
  const RoutingMetrics dp_metrics = evaluate(m, dp.routing);
  EXPECT_GT(dp_metrics.carried_volume, 0.9 * lp_metrics.carried_volume);
  // The paper reports SB-DP within 8% of SB-LP latency; allow slack on a
  // random instance.
  EXPECT_LT(dp_metrics.mean_latency_ms, 1.6 * lp_metrics.mean_latency_ms);
}

// ---------------------------------------------------------------- Baselines

TEST(Anycast, PicksNearestSite) {
  LineFixture fx;
  const ChainRouting r = solve_anycast(fx.m);
  // Nearest VNF site from A is M (5 ms < 10 ms).
  const auto& flows = r.flows(fx.chain, 1);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].dst, NodeId{1});
  EXPECT_NEAR(flows[0].fraction, 1.0, 1e-12);
}

TEST(Anycast, IgnoresCapacity) {
  LineFixture fx{/*cap_m=*/0.1, /*cap_b=*/100.0};
  const ChainRouting r = solve_anycast(fx.m);
  const auto& flows = r.flows(fx.chain, 1);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].dst, NodeId{1});   // still M, overloaded
  const RoutingMetrics metrics = evaluate(fx.m, r);
  EXPECT_FALSE(metrics.feasible);
}

TEST(ComputeAware, AvoidsSaturatedSite) {
  LineFixture fx{/*cap_m=*/0.1, /*cap_b=*/100.0};
  const ChainRouting r = solve_compute_aware(fx.m);
  const auto& flows = r.flows(fx.chain, 1);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].dst, NodeId{2});   // B has headroom
  const RoutingMetrics metrics = evaluate(fx.m, r);
  EXPECT_TRUE(metrics.feasible);
}

TEST(ComputeAware, FallsBackWhenNothingFits) {
  LineFixture fx{/*cap_m=*/0.5, /*cap_b=*/0.1, /*traffic=*/2.0};
  const ChainRouting r = solve_compute_aware(fx.m);
  // Still routes (overloading the least-bad site) rather than dropping.
  EXPECT_NEAR(r.carried_fraction(fx.chain, 1), 1.0, 1e-12);
}

TEST(Baselines, AnycastWorseOrEqualThroughputThanDp) {
  model::ScenarioParams params;
  params.chain_count = 30;
  params.vnf_count = 8;
  params.coverage = 0.4;
  params.total_chain_traffic = 800.0;
  params.site_capacity = 400.0;
  const NetworkModel m = model::make_scenario(params);
  const RoutingMetrics anycast = evaluate(m, solve_anycast(m));
  const DpResult dp = solve_dp_routing(m);
  const RoutingMetrics dpm = evaluate(m, dp.routing);
  EXPECT_LE(anycast.feasible_throughput, dpm.feasible_throughput + 1e-6);
}

// -------------------------------------------------------- CapacityPlanning

TEST(CloudPlanning, LpBeatsUniformAllocation) {
  model::ScenarioParams params;
  params.chain_count = 12;
  params.vnf_count = 5;
  params.coverage = 0.5;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;
  params.site_capacity = 50.0;
  params.total_chain_traffic = 60.0;
  NetworkModel m = model::make_scenario(params);

  const double budget = 100.0;
  const CloudPlanResult planned = plan_cloud_capacity(m, budget);
  ASSERT_EQ(planned.status, lp::SolveStatus::kOptimal);

  // Uniform baseline: apply, then measure alpha via the same LP (budget 0).
  NetworkModel uniform_model = model::make_scenario(params);
  apply_capacity_increase(uniform_model,
                          uniform_allocation(uniform_model, budget));
  const CloudPlanResult uniform = plan_cloud_capacity(uniform_model, 0.0);
  ASSERT_EQ(uniform.status, lp::SolveStatus::kOptimal);

  EXPECT_GE(planned.alpha, uniform.alpha - 1e-6);
}

TEST(CloudPlanning, BudgetIsRespected) {
  model::ScenarioParams params;
  params.chain_count = 8;
  params.vnf_count = 4;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;
  const NetworkModel m = model::make_scenario(params);
  const CloudPlanResult planned = plan_cloud_capacity(m, 50.0);
  ASSERT_EQ(planned.status, lp::SolveStatus::kOptimal);
  double total = 0.0;
  for (const double a : planned.extra_site_capacity) {
    EXPECT_GE(a, -1e-9);
    total += a;
  }
  EXPECT_LE(total, 50.0 + 1e-6);
}

TEST(VnfPlacement, GreedyImprovesLatency) {
  model::ScenarioParams params;
  params.chain_count = 15;
  params.vnf_count = 4;
  params.coverage = 0.25;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;
  NetworkModel m = model::make_scenario(params);
  VnfPlacementOptions options;
  options.new_sites_per_vnf = 1;
  const VnfPlacementResult r = plan_vnf_placement_greedy(m, options);
  EXPECT_LE(r.latency_after_ms, r.latency_before_ms + 1e-9);
  // Every VNF got its new site.
  for (const model::Vnf& f : m.vnfs()) {
    EXPECT_FALSE(r.new_sites[f.id.value()].empty());
  }
}

TEST(VnfPlacement, GreedyBeatsRandomOnAverage) {
  model::ScenarioParams params;
  params.chain_count = 15;
  params.vnf_count = 4;
  params.coverage = 0.25;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;

  NetworkModel greedy_model = model::make_scenario(params);
  VnfPlacementOptions options;
  options.new_sites_per_vnf = 1;
  const VnfPlacementResult greedy =
      plan_vnf_placement_greedy(greedy_model, options);

  // Average several random placements.
  double random_total = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    NetworkModel random_model = model::make_scenario(params);
    Rng rng{static_cast<std::uint64_t>(100 + t)};
    const VnfPlacementResult random =
        plan_vnf_placement_random(random_model, options, rng);
    random_total += random.latency_after_ms;
  }
  EXPECT_LE(greedy.latency_after_ms, random_total / trials + 1e-9);
}

TEST(VnfPlacement, MipChoosesObviousSite) {
  // Chain A -> fw -> C on a line; fw deployed only at far end D.  The MIP
  // with one new site must choose B (node 1) or C (node 2), cutting the
  // detour.  Node ids: A=0, B=1, C=2, D=3.
  NetworkModel m{net::make_line_topology(4, 100.0, 5.0)};
  const SiteId sb = m.add_site(NodeId{1}, 1000.0, "B");
  const SiteId sc = m.add_site(NodeId{2}, 1000.0, "C");
  const SiteId sd = m.add_site(NodeId{3}, 1000.0, "D");
  (void)sb;
  (void)sc;
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, sd, 100.0);
  Chain c;
  c.ingress = NodeId{0};
  c.egress = NodeId{2};
  c.vnfs = {fw};
  c.forward_traffic = {1.0, 1.0};
  c.reverse_traffic = {0.0, 0.0};
  m.add_chain(std::move(c));

  const auto chosen = plan_single_vnf_mip(m, fw, 1, 100.0);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_TRUE(chosen[0] == sb || chosen[0] == sc);
  // Model restored: fw deployed only at D again.
  EXPECT_EQ(m.vnf(fw).deployments.size(), 1u);
}

}  // namespace
}  // namespace switchboard::te
