// Tests for the invariant-checking layer: the SWB_CHECK macro family
// (tests/check death tests assert the failure message carries the
// expression, operand values, and streamed context) and one audit test per
// structure exposing check_invariants().
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "control/two_phase.hpp"
#include "core/middleware.hpp"
#include "dataplane/dht_flow_table.hpp"
#include "dataplane/flow_table.hpp"
#include "dataplane/load_balancer.hpp"
#include "model/network_model.hpp"
#include "net/topology.hpp"
#include "net/topology_gen.hpp"
#include "sim/simulator.hpp"
#include "te/loads.hpp"
#include "te/routing_solution.hpp"

namespace switchboard {
namespace {

dataplane::FiveTuple tuple(std::uint32_t i) {
  return dataplane::FiveTuple{0x0A000000u + i, 0xC0A80001u,
                              static_cast<std::uint16_t>(5000 + (i % 60000)),
                              80, 6};
}

// ------------------------------------------------------------ Check macros

TEST(CheckMacros, PassingChecksAreSilent) {
  SWB_CHECK(true) << "never formatted";
  SWB_CHECK_EQ(2 + 2, 4);
  SWB_CHECK_NE(1, 2);
  SWB_CHECK_LT(1, 2);
  SWB_CHECK_LE(2, 2);
  SWB_CHECK_GT(3, 2);
  SWB_CHECK_GE(3, 3);
}

TEST(CheckMacrosDeathTest, FailureNamesTheExpression) {
  EXPECT_DEATH(SWB_CHECK(1 == 2), "SWB_CHECK\\(1 == 2\\)");
}

TEST(CheckMacrosDeathTest, ComparisonPrintsBothOperandValues) {
  const int occupied = 17;
  const int counted = 16;
  EXPECT_DEATH(SWB_CHECK_EQ(occupied, counted), "\\(17 vs 16\\)");
}

TEST(CheckMacrosDeathTest, StreamedContextAppearsInTheMessage) {
  EXPECT_DEATH(SWB_CHECK_LT(5, 3) << "while probing chain " << 7,
               "while probing chain 7");
}

TEST(CheckMacrosDeathTest, MessageCarriesFileAndLine) {
  EXPECT_DEATH(SWB_CHECK(false), "check_test\\.cpp:[0-9]+");
}

TEST(CheckMacros, OperandsAreEvaluatedExactlyOnce) {
  int calls = 0;
  const auto bump = [&calls] { return ++calls; };
  SWB_CHECK_GE(bump(), 1);
  EXPECT_EQ(calls, 1);
}

TEST(CheckMacros, OneByteIntegersFormatNumerically) {
  EXPECT_EQ(check_detail::format_value(static_cast<std::uint8_t>(7)), "7");
  EXPECT_EQ(check_detail::format_value(static_cast<std::int8_t>(-3)), "-3");
  EXPECT_EQ(check_detail::format_value(true), "true");
  EXPECT_EQ(check_detail::format_value(std::string{"abc"}), "abc");
}

TEST(CheckMacros, DcheckMatchesBuildMode) {
  int evaluations = 0;
  const auto observe = [&evaluations] {
    ++evaluations;
    return true;
  };
  SWB_DCHECK(observe());
#ifdef NDEBUG
  // Compiled out: the condition is type-checked but never run.
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 1);
  EXPECT_DEATH(SWB_DCHECK_EQ(1, 2), "SWB_CHECK_EQ");
#endif
}

// --------------------------------------------------------------- FlowTable

TEST(FlowTableAudit, SurvivesChurnAndGrowth) {
  dataplane::FlowTable table{16};
  const dataplane::Labels labels{1, 2};
  // Push through several growth cycles, with deletions creating
  // tombstones interleaved along probe chains.
  for (std::uint32_t i = 0; i < 5000; ++i) {
    table.insert(labels, tuple(i), dataplane::FlowEntry{i, i + 1, i + 2});
    if (i % 3 == 0) table.erase(labels, tuple(i / 2));
  }
  table.check_invariants();
  for (std::uint32_t i = 4000; i < 5000; ++i) {
    const auto* entry = table.find(labels, tuple(i));
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->vnf_instance, i);
  }
}

// ------------------------------------------------------------ DhtFlowTable

TEST(DhtFlowTableAudit, ReplicationTargetHoldsAcrossFailureAndRecovery) {
  dataplane::DhtFlowTable dht{5};
  const dataplane::Labels labels{9, 1};
  for (std::uint32_t i = 0; i < 500; ++i) {
    dht.insert(labels, tuple(i), dataplane::FlowEntry{i, i, i});
  }
  dht.check_invariants();
  dht.fail_node(2);
  dht.check_invariants();   // re-replication restored the factor-2 target
  dht.recover_node(2);
  dht.check_invariants();
  EXPECT_EQ(dht.total_flows(), 500u);
}

// ------------------------------------------------------------ LoadBalancer

TEST(WeightedChoiceAudit, PrefixSumsStayConsistent) {
  dataplane::WeightedChoice choice;
  choice.add(3, 0.5);
  choice.add(7, 2.0);
  choice.add(9, 0.25);
  choice.check_invariants();
  EXPECT_DOUBLE_EQ(choice.total_weight(), 2.75);
}

TEST(WeightedChoiceDeathTest, RejectsNonPositiveWeight) {
  dataplane::WeightedChoice choice;
  EXPECT_DEATH(choice.add(1, 0.0), "weight > 0");
}

TEST(RuleTableAudit, InstalledRulesAuditClean) {
  dataplane::RuleTable rules;
  dataplane::LoadBalanceRule rule;
  rule.vnf_instances.add(11, 1.0);
  rule.next_forwarders.add(21, 0.5);
  rule.next_forwarders.add(22, 0.5);
  rules.install(dataplane::Labels{1, 2}, rule);
  dataplane::LoadBalanceRule ingress_only;   // legal: only next hops
  ingress_only.next_forwarders.add(31, 1.0);
  rules.install(dataplane::Labels{1, 3}, ingress_only);
  rules.check_invariants();
}

// ---------------------------------------------------------------- Topology

TEST(TopologyAudit, GeneratedTopologyIsWellFormed) {
  const net::Topology line = net::make_line_topology(6, 40.0, 5.0);
  line.check_invariants();
  net::Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  topo.add_link(a, b, 10.0, 1.0);
  topo.add_link(b, a, 10.0, 1.0);
  topo.check_invariants();
}

// ------------------------------------------------------------ ChainRouting

TEST(ChainRoutingAudit, ConservedFlowPasses) {
  te::ChainRouting routing{1};
  const ChainId chain{0};
  routing.init_chain(chain, 2);
  // Stage 1 splits 60/40 across two sites; stage 2 forwards each share on.
  routing.add_flow(chain, 1, NodeId{0}, NodeId{1}, 0.6);
  routing.add_flow(chain, 1, NodeId{0}, NodeId{2}, 0.4);
  routing.add_flow(chain, 2, NodeId{1}, NodeId{3}, 0.6);
  routing.add_flow(chain, 2, NodeId{2}, NodeId{3}, 0.4);
  routing.check_invariants();
}

TEST(ChainRoutingAuditDeathTest, LeakedFlowIsCaught) {
  te::ChainRouting routing{1};
  const ChainId chain{0};
  routing.init_chain(chain, 2);
  routing.add_flow(chain, 1, NodeId{0}, NodeId{1}, 1.0);
  // Stage 2 forwards only half of what arrived at node 1.
  routing.add_flow(chain, 2, NodeId{1}, NodeId{2}, 0.5);
  EXPECT_DEATH(routing.check_invariants(), "CHECK failed");
}

// ---------------------------------------------------------------- Simulator

TEST(SimulatorAudit, QueueStaysMonotoneThroughCancellation) {
  sim::Simulator simulator;
  int fired = 0;
  simulator.schedule(5, [&fired] { ++fired; });
  const sim::EventHandle doomed = simulator.schedule(3, [&fired] { ++fired; });
  simulator.schedule(9, [&fired] { ++fired; });
  simulator.check_invariants();
  EXPECT_TRUE(simulator.cancel(doomed));
  simulator.check_invariants();
  simulator.step();
  simulator.check_invariants();
  simulator.run();
  simulator.check_invariants();
  EXPECT_EQ(fired, 2);
}

// ------------------------------------------------------- 2PC state machine

TEST(TwoPhase, LegalMatrixMatchesTheProtocol) {
  using control::TwoPhaseState;
  using control::TwoPhaseTracker;
  EXPECT_TRUE(TwoPhaseTracker::legal(TwoPhaseState::kIdle,
                                     TwoPhaseState::kPrepared));
  EXPECT_TRUE(TwoPhaseTracker::legal(TwoPhaseState::kIdle,
                                     TwoPhaseState::kAborted));
  EXPECT_TRUE(TwoPhaseTracker::legal(TwoPhaseState::kPrepared,
                                     TwoPhaseState::kPrepared));
  EXPECT_TRUE(TwoPhaseTracker::legal(TwoPhaseState::kPrepared,
                                     TwoPhaseState::kCommitted));
  EXPECT_TRUE(TwoPhaseTracker::legal(TwoPhaseState::kPrepared,
                                     TwoPhaseState::kAborted));
  // Terminal states re-enter only themselves; nothing returns to idle.
  EXPECT_TRUE(TwoPhaseTracker::legal(TwoPhaseState::kCommitted,
                                     TwoPhaseState::kCommitted));
  EXPECT_TRUE(TwoPhaseTracker::legal(TwoPhaseState::kAborted,
                                     TwoPhaseState::kAborted));
  EXPECT_FALSE(TwoPhaseTracker::legal(TwoPhaseState::kIdle,
                                      TwoPhaseState::kCommitted));
  EXPECT_FALSE(TwoPhaseTracker::legal(TwoPhaseState::kAborted,
                                      TwoPhaseState::kCommitted));
  EXPECT_FALSE(TwoPhaseTracker::legal(TwoPhaseState::kCommitted,
                                      TwoPhaseState::kAborted));
  EXPECT_FALSE(TwoPhaseTracker::legal(TwoPhaseState::kPrepared,
                                      TwoPhaseState::kIdle));
}

TEST(TwoPhase, HappyPathWalksPrepareThenCommit) {
  using control::TwoPhaseState;
  control::TwoPhaseTracker tracker;
  const ChainId chain{1};
  const RouteId route{4};
  EXPECT_EQ(tracker.state(chain, route), TwoPhaseState::kIdle);
  tracker.transition(chain, route, TwoPhaseState::kPrepared);
  tracker.transition(chain, route, TwoPhaseState::kPrepared);   // 2nd stage
  tracker.transition(chain, route, TwoPhaseState::kCommitted);
  tracker.transition(chain, route, TwoPhaseState::kCommitted);  // idempotent
  EXPECT_EQ(tracker.state(chain, route), TwoPhaseState::kCommitted);
  EXPECT_EQ(tracker.count(TwoPhaseState::kCommitted), 1u);
  tracker.check_invariants();
}

TEST(TwoPhase, LateAbortOnCommittedIsRejectedAndCounted) {
  // Message duplication / 2PC retries make a stale abort reaching an
  // already-committed reservation an expected event, not a protocol bug:
  // try_transition must reject-and-count it, never SWB_CHECK-abort.
  using control::TwoPhaseState;
  control::TwoPhaseTracker tracker;
  const ChainId chain{3};
  const RouteId route{9};
  tracker.transition(chain, route, TwoPhaseState::kPrepared);
  tracker.transition(chain, route, TwoPhaseState::kCommitted);
  EXPECT_EQ(tracker.rejected(), 0u);
  EXPECT_FALSE(
      tracker.try_transition(chain, route, TwoPhaseState::kAborted));
  EXPECT_EQ(tracker.state(chain, route), TwoPhaseState::kCommitted)
      << "late abort must not disturb the committed reservation";
  EXPECT_EQ(tracker.rejected(), 1u);
  // Re-delivered commit stays an idempotent no-op (legal self-loop).
  EXPECT_TRUE(
      tracker.try_transition(chain, route, TwoPhaseState::kCommitted));
  EXPECT_EQ(tracker.rejected(), 1u);
  tracker.check_invariants();
}

TEST(TwoPhaseDeathTest, CommitWithoutPrepareIsIllegal) {
  control::TwoPhaseTracker tracker;
  EXPECT_DEATH(
      tracker.transition(ChainId{1}, RouteId{1},
                         control::TwoPhaseState::kCommitted),
      "illegal 2PC transition idle -> committed");
}

TEST(TwoPhaseDeathTest, CommitAfterAbortIsIllegal) {
  control::TwoPhaseTracker tracker;
  tracker.transition(ChainId{1}, RouteId{1},
                     control::TwoPhaseState::kAborted);
  EXPECT_DEATH(
      tracker.transition(ChainId{1}, RouteId{1},
                         control::TwoPhaseState::kCommitted),
      "illegal 2PC transition aborted -> committed");
}

// ----------------------------------------------------------- Control plane

/// Line topology A(0) - M(1) - B(2) with one firewall VNF at M and B —
/// the same shape control_test.cpp uses.
struct ControlFixture {
  model::NetworkModel make_model() {
    model::NetworkModel m{net::make_line_topology(3, 50.0, 5.0)};
    site_a = m.add_site(NodeId{0}, 1000.0, "A");
    site_m = m.add_site(NodeId{1}, 1000.0, "M");
    site_b = m.add_site(NodeId{2}, 1000.0, "B");
    fw = m.add_vnf("firewall", 1.0);
    m.deploy_vnf(fw, site_m, 100.0);
    m.deploy_vnf(fw, site_b, 100.0);
    return m;
  }

  control::ChainSpec make_spec(EdgeServiceId edge) const {
    control::ChainSpec spec;
    spec.name = "audit-chain";
    spec.ingress_service = edge;
    spec.ingress_node = NodeId{0};
    spec.egress_service = edge;
    spec.egress_node = NodeId{2};
    spec.vnfs = {fw};
    return spec;
  }

  SiteId site_a, site_m, site_b;
  VnfId fw;
};

TEST(VnfControllerAudit, ReservationLifecycleTracksTwoPhaseState) {
  using control::TwoPhaseState;
  ControlFixture fx;
  core::Middleware mw{fx.make_model()};
  auto& controller = mw.deployment().vnf_controller(fx.fw);

  ASSERT_TRUE(controller.prepare(ChainId{1}, RouteId{1}, fx.site_m, 10.0));
  EXPECT_EQ(controller.two_phase_state(ChainId{1}, RouteId{1}),
            TwoPhaseState::kPrepared);
  controller.check_invariants();

  controller.abort(ChainId{1}, RouteId{1});
  EXPECT_EQ(controller.two_phase_state(ChainId{1}, RouteId{1}),
            TwoPhaseState::kAborted);
  EXPECT_DOUBLE_EQ(controller.allocated(fx.site_m), 0.0);
  controller.check_invariants();

  // A rejected vote (capacity 100 at M) records the no as kAborted.
  EXPECT_FALSE(controller.prepare(ChainId{2}, RouteId{2}, fx.site_m, 500.0));
  EXPECT_EQ(controller.two_phase_state(ChainId{2}, RouteId{2}),
            TwoPhaseState::kAborted);
  controller.check_invariants();
}

TEST(VnfControllerDeathTest, CommitOfUnpreparedRouteAborts) {
  ControlFixture fx;
  core::Middleware mw{fx.make_model()};
  auto& controller = mw.deployment().vnf_controller(fx.fw);
  EXPECT_DEATH(controller.commit(ChainId{5}, RouteId{5}, /*egress_label=*/2),
               "illegal 2PC transition idle -> committed");
}

TEST(GlobalSwitchboardAudit, CleanAfterChainCreationAndRouteAddition) {
  ControlFixture fx;
  core::Middleware mw{fx.make_model()};
  const EdgeServiceId edge = mw.register_edge_service("vpn");
  const auto created = mw.create_chain(fx.make_spec(edge));
  ASSERT_TRUE(created.ok()) << created.error().to_string();
  auto& global = mw.deployment().global();
  global.check_invariants();

  const auto added = mw.add_route(created->chain, {fx.site_b});
  ASSERT_TRUE(added.ok()) << added.error().to_string();
  global.check_invariants();
  global.loads().check_no_capacity_violation();

  // After 2PC the committed route's state is terminal at the controller.
  EXPECT_EQ(mw.deployment().vnf_controller(fx.fw).two_phase_state(
                created->chain, created->route),
            control::TwoPhaseState::kCommitted);
}

// ------------------------------------------------------------------- Loads

TEST(LoadsAudit, FreshAccountingIsConsistent) {
  ControlFixture fx;
  const model::NetworkModel m = fx.make_model();
  te::Loads loads{m};
  loads.check_invariants();
  loads.check_no_capacity_violation();
}

}  // namespace
}  // namespace switchboard
