#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "bus/message_bus.hpp"
#include "bus/topic.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace switchboard::bus {
namespace {

BusConfig make_config(std::size_t sites, double delay_ms = 20.0) {
  BusConfig config;
  config.site_count = sites;
  config.inter_site_delay = [delay_ms](SiteId, SiteId) {
    return sim::from_ms(delay_ms);
  };
  return config;
}

// ------------------------------------------------------------------- Topic

TEST(Topic, PathsFollowPaperConvention) {
  const Topic t = forwarders_topic(ChainId{1}, 3, VnfId{7}, SiteId{2});
  EXPECT_EQ(t.path, "/c1/e3/vnf_7/site_2_forwarders");
  EXPECT_EQ(t.publisher_site, SiteId{2});
  const Topic i = instances_topic(ChainId{1}, 3, VnfId{7}, SiteId{2});
  EXPECT_EQ(i.path, "/c1/e3/vnf_7/site_2_instances");
  const Topic r = chain_routes_topic(ChainId{4}, SiteId{0});
  EXPECT_EQ(r.path, "/chains/4/routes");
  EXPECT_EQ(r.publisher_site, SiteId{0});
}

// ---------------------------------------------------------------- ProxyBus

TEST(ProxyBus, DeliversToRemoteSubscriber) {
  sim::Simulator sim;
  ProxyBus bus{sim, make_config(3, 25.0)};
  const Topic topic{"/t", SiteId{0}};
  std::vector<std::string> received;
  sim::SimTime delivered_at = 0;
  bus.subscribe(SiteId{1}, topic, [&](const Message& m) {
    received.push_back(m.payload);
    delivered_at = sim.now();
  });
  bus.publish(topic, "hello");
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "hello");
  // Service (0.1 ms) + propagation (25 ms).
  EXPECT_EQ(delivered_at, sim::from_ms(25.0) + sim::microseconds(100));
}

TEST(ProxyBus, NoSubscriberNoMessage) {
  sim::Simulator sim;
  ProxyBus bus{sim, make_config(3)};
  bus.publish(Topic{"/t", SiteId{0}}, "x");
  sim.run();
  EXPECT_EQ(bus.stats().wide_area_messages, 0u);
  EXPECT_EQ(bus.stats().local_deliveries, 0u);
}

TEST(ProxyBus, OneWideAreaCopyPerSite) {
  sim::Simulator sim;
  ProxyBus bus{sim, make_config(4)};
  const Topic topic{"/t", SiteId{0}};
  int delivered = 0;
  // Five subscribers at site 1, three at site 2.
  for (int i = 0; i < 5; ++i) {
    bus.subscribe(SiteId{1}, topic, [&](const Message&) { ++delivered; });
  }
  for (int i = 0; i < 3; ++i) {
    bus.subscribe(SiteId{2}, topic, [&](const Message&) { ++delivered; });
  }
  bus.publish(topic, "x");
  sim.run();
  EXPECT_EQ(bus.stats().wide_area_messages, 2u);   // one per site
  EXPECT_EQ(delivered, 8);
}

TEST(ProxyBus, LocalSubscriberNoWideArea) {
  sim::Simulator sim;
  ProxyBus bus{sim, make_config(2)};
  const Topic topic{"/t", SiteId{0}};
  int delivered = 0;
  bus.subscribe(SiteId{0}, topic, [&](const Message&) { ++delivered; });
  bus.publish(topic, "x");
  sim.run();
  EXPECT_EQ(bus.stats().wide_area_messages, 0u);
  EXPECT_EQ(delivered, 1);
}

TEST(ProxyBus, EgressBufferOverflowDrops) {
  sim::Simulator sim;
  BusConfig config = make_config(2);
  config.egress_buffer = 4;
  config.per_message_service = sim::milliseconds(1);
  ProxyBus bus{sim, config};
  const Topic topic{"/t", SiteId{0}};
  bus.subscribe(SiteId{1}, topic, [](const Message&) {});
  for (int i = 0; i < 20; ++i) bus.publish(topic, "x");
  sim.run();
  EXPECT_GT(bus.stats().drops, 0u);
  EXPECT_LT(bus.stats().wide_area_messages, 20u);
  EXPECT_EQ(bus.stats().wide_area_messages + bus.stats().drops, 20u);
}

TEST(ProxyBus, DistinctTopicsAreIndependent) {
  sim::Simulator sim;
  ProxyBus bus{sim, make_config(2)};
  int a_count = 0;
  int b_count = 0;
  bus.subscribe(SiteId{1}, Topic{"/a", SiteId{0}},
                [&](const Message&) { ++a_count; });
  bus.subscribe(SiteId{1}, Topic{"/b", SiteId{0}},
                [&](const Message&) { ++b_count; });
  bus.publish(Topic{"/a", SiteId{0}}, "x");
  sim.run();
  EXPECT_EQ(a_count, 1);
  EXPECT_EQ(b_count, 0);
}

TEST(ProxyBus, DuplicateSiteSubscriptionStillOneWireCopy) {
  sim::Simulator sim;
  ProxyBus bus{sim, make_config(2)};
  const Topic topic{"/t", SiteId{0}};
  int delivered = 0;
  bus.subscribe(SiteId{1}, topic, [&](const Message&) { ++delivered; });
  bus.subscribe(SiteId{1}, topic, [&](const Message&) { ++delivered; });
  bus.publish(topic, "x");
  sim.run();
  EXPECT_EQ(bus.stats().wide_area_messages, 1u);
  EXPECT_EQ(delivered, 2);
}

// ------------------------------------------------------------- FullMeshBus

TEST(FullMeshBus, OneCopyPerSubscriber) {
  sim::Simulator sim;
  FullMeshBus bus{sim, make_config(4)};
  const Topic topic{"/t", SiteId{0}};
  int delivered = 0;
  for (int i = 0; i < 5; ++i) {
    bus.subscribe(SiteId{1}, topic, [&](const Message&) { ++delivered; });
  }
  bus.publish(topic, "x");
  sim.run();
  EXPECT_EQ(bus.stats().wide_area_messages, 5u);   // per subscriber!
  EXPECT_EQ(delivered, 5);
}

TEST(FullMeshBus, QueuingInflatesLatencyVersusProxy) {
  // Many subscribers spread across sites; a burst of publishes.  The
  // full mesh serializes copies per subscriber at the publisher egress,
  // the proxy bus one per site: mean delivery latency must be higher for
  // the mesh (Fig. 9).
  constexpr std::size_t kSites = 10;
  constexpr int kSubsPerSite = 8;
  constexpr int kBurst = 50;

  auto run = [&](auto& bus, sim::Simulator& sim) {
    const Topic topic{"/t", SiteId{0}};
    for (std::size_t s = 1; s < kSites; ++s) {
      for (int i = 0; i < kSubsPerSite; ++i) {
        bus.subscribe(SiteId{static_cast<SiteId::underlying_type>(s)}, topic,
                      [](const Message&) {});
      }
    }
    for (int i = 0; i < kBurst; ++i) bus.publish(topic, "x");
    sim.run();
  };

  sim::Simulator sim_proxy;
  ProxyBus proxy{sim_proxy, make_config(kSites)};
  run(proxy, sim_proxy);

  sim::Simulator sim_mesh;
  FullMeshBus mesh{sim_mesh, make_config(kSites)};
  run(mesh, sim_mesh);

  ASSERT_GT(proxy.stats().delivery_latency_ms.count(), 0u);
  ASSERT_GT(mesh.stats().delivery_latency_ms.count(), 0u);
  EXPECT_GT(mesh.stats().delivery_latency_ms.mean(),
            proxy.stats().delivery_latency_ms.mean());
  EXPECT_GT(mesh.stats().wide_area_messages,
            proxy.stats().wide_area_messages);
}

TEST(FullMeshBus, DropsUnderOverload) {
  sim::Simulator sim;
  BusConfig config = make_config(3);
  config.egress_buffer = 8;
  config.per_message_service = sim::milliseconds(1);
  FullMeshBus bus{sim, config};
  const Topic topic{"/t", SiteId{0}};
  for (int i = 0; i < 20; ++i) {
    bus.subscribe(SiteId{1}, topic, [](const Message&) {});
    bus.subscribe(SiteId{2}, topic, [](const Message&) {});
  }
  for (int i = 0; i < 10; ++i) bus.publish(topic, "x");
  sim.run();
  EXPECT_GT(bus.stats().drops, 0u);
}

// Property: both buses deliver the same *set* of messages when nothing
// drops — the topologies differ in cost, not semantics.
TEST(BusEquivalence, SameDeliveriesWithoutOverload) {
  constexpr std::size_t kSites = 5;
  auto run = [&](auto& bus, sim::Simulator& sim) {
    std::vector<int> delivered(kSites, 0);
    for (std::size_t s = 0; s < kSites; ++s) {
      bus.subscribe(SiteId{static_cast<SiteId::underlying_type>(s)},
                    Topic{"/t", SiteId{0}},
                    [&delivered, s](const Message&) { ++delivered[s]; });
    }
    for (int i = 0; i < 7; ++i) bus.publish(Topic{"/t", SiteId{0}}, "m");
    sim.run();
    return delivered;
  };

  sim::Simulator sim_a;
  ProxyBus proxy{sim_a, make_config(kSites)};
  const auto a = run(proxy, sim_a);

  sim::Simulator sim_b;
  FullMeshBus mesh{sim_b, make_config(kSites)};
  const auto b = run(mesh, sim_b);

  EXPECT_EQ(a, b);
  EXPECT_EQ(proxy.stats().drops, 0u);
  EXPECT_EQ(mesh.stats().drops, 0u);
}


// Property: for random topic/subscriber layouts (no overload), the proxy
// bus delivers exactly once per (publish, subscriber), and its wide-area
// cost is one message per (publish, distinct remote subscribed site).
class BusFanoutProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, BusFanoutProperty,
                         ::testing::Values(2, 12, 22, 32));

TEST_P(BusFanoutProperty, DeliveryAndWanCountsMatchTopology) {
  Rng rng{GetParam()};
  sim::Simulator sim;
  constexpr std::size_t kSites = 8;
  BusConfig config = make_config(kSites);
  config.egress_buffer = 1 << 20;   // no drops in this property
  ProxyBus bus{sim, config};

  const int topics = static_cast<int>(rng.uniform_int(1, 4));
  std::vector<Topic> all_topics;
  std::vector<std::set<std::uint32_t>> remote_sites(topics);
  std::vector<int> subscriber_count(topics, 0);
  std::vector<int> delivered(topics, 0);
  for (int t = 0; t < topics; ++t) {
    const SiteId publisher{static_cast<SiteId::underlying_type>(
        rng.uniform_int(0, kSites - 1))};
    all_topics.push_back(Topic{"/t" + std::to_string(t), publisher});
    const int subs = static_cast<int>(rng.uniform_int(1, 12));
    for (int k = 0; k < subs; ++k) {
      const SiteId site{static_cast<SiteId::underlying_type>(
          rng.uniform_int(0, kSites - 1))};
      bus.subscribe(site, all_topics[t],
                    [&delivered, t](const Message&) { ++delivered[t]; });
      ++subscriber_count[t];
      if (site != publisher) remote_sites[t].insert(site.value());
    }
  }

  std::vector<int> publishes(topics, 0);
  std::uint64_t expected_wan = 0;
  for (int t = 0; t < topics; ++t) {
    publishes[t] = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < publishes[t]; ++i) {
      bus.publish(all_topics[t], "m" + std::to_string(i));
    }
    expected_wan +=
        static_cast<std::uint64_t>(publishes[t]) * remote_sites[t].size();
  }
  sim.run();

  for (int t = 0; t < topics; ++t) {
    EXPECT_EQ(delivered[t], publishes[t] * subscriber_count[t])
        << "topic " << t;
  }
  EXPECT_EQ(bus.stats().wide_area_messages, expected_wan);
  EXPECT_EQ(bus.stats().drops, 0u);
}

// ------------------------------------------------------------ ReliableBus

// Without abandonment, every reliable copy toward a silent site burns its
// full retry budget before counting as lost — this bounds the waste the
// crash path avoids.
TEST(ReliableBus, SilentSiteBurnsTheFullRetryBudget) {
  sim::Simulator sim;
  BusConfig config = make_config(2);
  config.reliable_delivery = true;
  config.fault_hook = [](SiteId, SiteId to, const std::string&) {
    sim::MessageVerdict verdict;
    verdict.drop = to == SiteId{1};   // site 1 went dark
    return verdict;
  };
  ProxyBus bus{sim, config};
  int delivered = 0;
  bus.subscribe(SiteId{1}, Topic{"/routes", SiteId{0}},
                [&delivered](const Message&) { ++delivered; });
  bus.publish(Topic{"/routes", SiteId{0}}, "r1");
  sim.run();

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(bus.stats().retransmits, config.max_retransmits);
  EXPECT_EQ(bus.stats().lost_messages, 1u);
  EXPECT_EQ(bus.stats().abandoned_retransmits, 0u);
  EXPECT_EQ(bus.reliable_in_flight(), 0u);   // gave up -> terminal
}

TEST(ReliableBus, AbandonStopsRetransmitsTowardCrashedSite) {
  sim::Simulator sim;
  BusConfig config = make_config(2);
  config.reliable_delivery = true;
  config.fault_hook = [](SiteId, SiteId to, const std::string&) {
    sim::MessageVerdict verdict;
    verdict.drop = to == SiteId{1};
    return verdict;
  };
  ProxyBus bus{sim, config};
  bus.subscribe(SiteId{1}, Topic{"/routes", SiteId{0}},
                [](const Message&) {});
  bus.publish(Topic{"/routes", SiteId{0}}, "r1");
  bus.publish(Topic{"/routes", SiteId{0}}, "r2");

  // The site's crash is observed before the first ack timeout: both
  // pending copies are written off immediately instead of retrying
  // against silence until the budget runs out.
  sim.run_until(sim::from_ms(50.0));
  EXPECT_EQ(bus.reliable_in_flight(), 2u);
  bus.abandon_retransmits_to(SiteId{1});
  EXPECT_EQ(bus.reliable_in_flight(), 0u);
  sim.run();

  EXPECT_EQ(bus.stats().abandoned_retransmits, 2u);
  EXPECT_EQ(bus.stats().retransmits, 0u);
  EXPECT_EQ(bus.stats().lost_messages, 0u);
}

TEST(ReliableBus, PrefixAbandonWritesOffOnlyMatchingTopics) {
  // A crashed controller replica silences only its replication stream;
  // the site's other reliable traffic (route pushes to a co-located
  // Local Switchboard) must keep retrying.  The prefix overload scopes
  // the write-off to one topic family.
  sim::Simulator sim;
  BusConfig config = make_config(2);
  config.reliable_delivery = true;
  config.fault_hook = [](SiteId, SiteId to, const std::string&) {
    sim::MessageVerdict verdict;
    verdict.drop = to == SiteId{1};
    return verdict;
  };
  ProxyBus bus{sim, config};
  bus.subscribe(SiteId{1}, Topic{"/ctl/repl/0_1", SiteId{0}},
                [](const Message&) {});
  bus.subscribe(SiteId{1}, Topic{"/routes", SiteId{0}}, [](const Message&) {});
  bus.publish(Topic{"/ctl/repl/0_1", SiteId{0}}, "frame");
  bus.publish(Topic{"/routes", SiteId{0}}, "r1");

  sim.run_until(sim::from_ms(50.0));
  EXPECT_EQ(bus.reliable_in_flight(), 2u);
  bus.abandon_retransmits_to(SiteId{1}, "/ctl/repl/");
  EXPECT_EQ(bus.reliable_in_flight(), 1u);   // the route copy survives
  sim.run();

  EXPECT_EQ(bus.stats().abandoned_retransmits, 1u);
  // The surviving route copy burns its budget against the dead site.
  EXPECT_EQ(bus.stats().retransmits, config.max_retransmits);
  EXPECT_EQ(bus.stats().lost_messages, 1u);
}

TEST(ReliableBus, FinishedEntriesAreReapedNotAccumulated) {
  sim::Simulator sim;
  BusConfig config = make_config(2);
  config.reliable_delivery = true;
  ProxyBus bus{sim, config};
  int delivered = 0;
  bus.subscribe(SiteId{1}, Topic{"/routes", SiteId{0}},
                [&delivered](const Message&) { ++delivered; });
  for (int i = 0; i < 3; ++i) {
    bus.publish(Topic{"/routes", SiteId{0}}, "m" + std::to_string(i));
  }
  sim.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(bus.stats().acks, 3u);
  EXPECT_EQ(bus.reliable_in_flight(), 0u);
  EXPECT_EQ(bus.reliable_tracked(), 3u);   // finished, awaiting reap

  // The next reliable send sweeps the finished entries before tracking
  // its own copy: state is bounded by the in-flight window, not history.
  bus.publish(Topic{"/routes", SiteId{0}}, "m3");
  EXPECT_EQ(bus.reliable_tracked(), 1u);
  sim.run();
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(bus.reliable_in_flight(), 0u);
}

}  // namespace
}  // namespace switchboard::bus
