// Single-threaded unit tests for ShardedFlowTable and the RSS helpers.
// Concurrency coverage lives in sharded_flow_table_concurrency_test.cpp.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "dataplane/sharded_flow_table.hpp"

namespace switchboard::dataplane {
namespace {

FiveTuple make_tuple(std::uint32_t i) {
  return FiveTuple{0x0A000000u + i, 0xC0A80001u,
                   static_cast<std::uint16_t>(1000 + (i % 60000)), 80, 6};
}

// ------------------------------------------------------------- RSS helpers

TEST(RssHelpers, ShardUsesTopBits) {
  EXPECT_EQ(rss_shard(0, 1), 0u);
  EXPECT_EQ(rss_shard(~0ull, 1), 0u);   // shift-by-64 special case
  EXPECT_EQ(rss_shard(0, 8), 0u);
  EXPECT_EQ(rss_shard(~0ull, 8), 7u);
  // Top 3 bits select among 8 shards; low bits are irrelevant.
  EXPECT_EQ(rss_shard(0x2000'0000'0000'0000ull, 8), 1u);
  EXPECT_EQ(rss_shard(0x2000'0000'0000'FFFFull, 8), 1u);
  EXPECT_EQ(rss_shard(0xE000'0000'0000'0000ull, 8), 7u);
}

TEST(RssHelpers, ShardCountForWorkers) {
  EXPECT_EQ(shard_count_for_workers(0), kShardsPerWorker);
  EXPECT_EQ(shard_count_for_workers(1), kShardsPerWorker);
  EXPECT_EQ(shard_count_for_workers(2), 2 * kShardsPerWorker);
  EXPECT_EQ(shard_count_for_workers(3), 4 * kShardsPerWorker);  // bit_ceil
  EXPECT_EQ(shard_count_for_workers(8), 8 * kShardsPerWorker);
}

TEST(RssHelpers, WorkerOwnershipIsDisjointAndComplete) {
  const std::size_t workers = 3;
  const std::size_t shards = shard_count_for_workers(workers);
  // Every shard maps to exactly one worker; every worker owns >= 1 shard.
  std::vector<std::set<std::size_t>> owned(workers);
  for (std::size_t s = 0; s < shards; ++s) {
    // A hash whose top bits select shard s.
    const std::uint64_t hash = static_cast<std::uint64_t>(s)
        << (64 - std::countr_zero(shards));
    ASSERT_EQ(rss_shard(hash, shards), s);
    const std::size_t w = rss_worker(hash, shards, workers);
    ASSERT_LT(w, workers);
    owned[w].insert(s);
  }
  std::size_t total = 0;
  for (const auto& set : owned) {
    EXPECT_FALSE(set.empty());
    total += set.size();
  }
  EXPECT_EQ(total, shards);
}

// -------------------------------------------------------- ShardedFlowTable

TEST(ShardedFlowTable, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedFlowTable(1024, 1).shard_count(), 1u);
  EXPECT_EQ(ShardedFlowTable(1024, 3).shard_count(), 4u);
  EXPECT_EQ(ShardedFlowTable(1024, 8).shard_count(), 8u);
}

TEST(ShardedFlowTable, InsertFindErase) {
  ShardedFlowTable table{64, 8};
  const Labels labels{7, 3};
  const FiveTuple t = make_tuple(1);
  EXPECT_FALSE(table.find(labels, t).has_value());
  table.insert(labels, t, FlowEntry{10, 20, 30});
  const std::optional<FlowEntry> entry = table.find(labels, t);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->vnf_instance, 10u);
  EXPECT_EQ(entry->next_forwarder, 20u);
  EXPECT_EQ(entry->prev_element, 30u);
  EXPECT_TRUE(table.erase(labels, t));
  EXPECT_FALSE(table.find(labels, t).has_value());
  EXPECT_FALSE(table.erase(labels, t));
}

TEST(ShardedFlowTable, InsertIfAbsentKeepsFirstPinning) {
  ShardedFlowTable table{64, 4};
  const Labels labels{1, 1};
  const FiveTuple t = make_tuple(1);
  const FlowEntry first = table.insert_if_absent(labels, t, FlowEntry{1, 1, 1});
  EXPECT_EQ(first.vnf_instance, 1u);
  // A racing second packet proposes a different pinning; the stored one wins.
  const FlowEntry second =
      table.insert_if_absent(labels, t, FlowEntry{2, 2, 2});
  EXPECT_EQ(second.vnf_instance, 1u);
  EXPECT_EQ(table.find(labels, t)->vnf_instance, 1u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ShardedFlowTable, EntriesLandInHashSelectedShard) {
  ShardedFlowTable table{256, 8};
  const Labels labels{1, 1};
  for (std::uint32_t i = 0; i < 2000; ++i) {
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }
  EXPECT_EQ(table.size(), 2000u);
  // Shard sizes sum to the total and more than one shard is populated.
  std::size_t sum = 0;
  std::size_t populated = 0;
  for (std::size_t s = 0; s < table.shard_count(); ++s) {
    sum += table.shard_size(s);
    populated += table.shard_size(s) > 0 ? 1 : 0;
  }
  EXPECT_EQ(sum, 2000u);
  EXPECT_GT(populated, 1u);
  table.check_invariants();   // includes the key-in-right-shard audit
}

TEST(ShardedFlowTable, StatsAggregateAcrossShards) {
  ShardedFlowTable table{64, 4};
  const Labels labels{1, 1};
  for (std::uint32_t i = 0; i < 100; ++i) {
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }
  for (std::uint32_t i = 0; i < 150; ++i) {   // 100 hits, 50 misses
    (void)table.find(labels, make_tuple(i));
  }
  for (std::uint32_t i = 0; i < 40; ++i) {
    EXPECT_TRUE(table.erase(labels, make_tuple(i)));
  }
  const ShardedFlowTable::Stats stats = table.stats();
  EXPECT_EQ(stats.inserts, 100u);
  EXPECT_EQ(stats.finds, 150u);
  EXPECT_EQ(stats.hits, 100u);
  EXPECT_EQ(stats.erases, 40u);
  EXPECT_EQ(table.size(), 60u);
  table.check_invariants();
}

TEST(ShardedFlowTable, ForEachVisitsEveryEntryOnce) {
  ShardedFlowTable table{64, 8};
  const Labels labels{1, 1};
  for (std::uint32_t i = 0; i < 500; ++i) {
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }
  std::set<std::uint32_t> seen;
  table.for_each([&](const Labels&, const FiveTuple&, const FlowEntry& entry) {
    EXPECT_TRUE(seen.insert(entry.vnf_instance).second);
  });
  EXPECT_EQ(seen.size(), 500u);
}

TEST(ShardedFlowTable, ClearEmptiesAllShards) {
  ShardedFlowTable table{64, 4};
  const Labels labels{1, 1};
  for (std::uint32_t i = 0; i < 200; ++i) {
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  for (std::size_t s = 0; s < table.shard_count(); ++s) {
    EXPECT_EQ(table.shard_size(s), 0u);
  }
  EXPECT_FALSE(table.find(labels, make_tuple(0)).has_value());
  table.check_invariants();
}

TEST(ShardedFlowTable, GrowsPerShardBeyondInitialCapacity) {
  ShardedFlowTable table{16, 4};   // 4 slots per shard to start
  const Labels labels{1, 1};
  for (std::uint32_t i = 0; i < 5000; ++i) {
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }
  EXPECT_EQ(table.size(), 5000u);
  for (std::uint32_t i = 0; i < 5000; ++i) {
    const std::optional<FlowEntry> e = table.find(labels, make_tuple(i));
    ASSERT_TRUE(e.has_value()) << i;
    EXPECT_EQ(e->vnf_instance, i);
  }
  table.check_invariants();
}

// ---------------------------------------------------- epoch-read protocol

// The mutex ablation path and the lock-free path are the same lookup.
TEST(ShardedFlowTable, FindMutexMatchesFind) {
  ShardedFlowTable table{64, 4};
  const Labels labels{1, 1};
  for (std::uint32_t i = 0; i < 500; ++i) {
    table.insert(labels, make_tuple(i), FlowEntry{i, i + 1, i + 2});
  }
  for (std::uint32_t i = 1; i < 500; i += 3) {
    (void)table.erase(labels, make_tuple(i));
  }
  for (std::uint32_t i = 0; i < 600; ++i) {
    const auto epoch_read = table.find(labels, make_tuple(i));
    const auto mutex_read = table.find_mutex(labels, make_tuple(i));
    ASSERT_EQ(epoch_read.has_value(), mutex_read.has_value()) << i;
    if (epoch_read) {
      EXPECT_EQ(*epoch_read, *mutex_read) << i;
    }
  }
}

// find_batch resolves exactly like per-key find(), including misses, and
// tallies the same stats.
TEST(ShardedFlowTable, FindBatchMatchesSingleLookups) {
  ShardedFlowTable table{64, 4};
  const Labels labels{2, 2};
  for (std::uint32_t i = 0; i < 300; i += 2) {   // odd keys stay absent
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }

  std::vector<ShardedFlowTable::LookupRequest> batch{300};
  for (std::uint32_t i = 0; i < 300; ++i) {
    batch[i].labels = labels;
    batch[i].tuple = make_tuple(i);
  }
  const ShardedFlowTable::Stats before = table.stats();
  table.find_batch(batch);
  const ShardedFlowTable::Stats after = table.stats();
  EXPECT_EQ(after.finds - before.finds, 300u);
  EXPECT_EQ(after.hits - before.hits, 150u);

  for (std::uint32_t i = 0; i < 300; ++i) {
    EXPECT_EQ(batch[i].hit, i % 2 == 0) << i;
    EXPECT_EQ(batch[i].hash, flow_hash(labels, make_tuple(i)));
    if (batch[i].hit) {
      EXPECT_EQ(batch[i].entry.vnf_instance, i);
    }
  }
}

// Erase + re-insert of the SAME key revives its tombstone slot; the
// revived entry is fresh, and rehash purges leftover tombstones.
TEST(ShardedFlowTable, EraseReinsertRevivesKey) {
  ShardedFlowTable table{64, 2};
  const Labels labels{3, 3};
  table.insert(labels, make_tuple(1), FlowEntry{10, 10, 10});
  EXPECT_TRUE(table.erase(labels, make_tuple(1)));
  EXPECT_FALSE(table.find(labels, make_tuple(1)).has_value());
  table.insert(labels, make_tuple(1), FlowEntry{20, 20, 20});
  const auto entry = table.find(labels, make_tuple(1));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->vnf_instance, 20u);
  EXPECT_EQ(table.size(), 1u);
  table.check_invariants();
}

// update_each rewrites entries in place (fresh immutable entries through
// the epoch domain) and reports how many changed.
TEST(ShardedFlowTable, UpdateEachRewritesMatchingEntries) {
  ShardedFlowTable table{64, 4};
  const Labels labels{4, 4};
  for (std::uint32_t i = 0; i < 100; ++i) {
    table.insert(labels, make_tuple(i), FlowEntry{i % 2, i, i});
  }
  const std::size_t updated = table.update_each(
      [](const Labels&, const FiveTuple&, FlowEntry& entry) {
        if (entry.vnf_instance != 1) return false;
        entry.vnf_instance = kNoElement;
        return true;
      });
  EXPECT_EQ(updated, 50u);
  std::size_t invalidated = 0;
  table.for_each([&](const Labels&, const FiveTuple&, const FlowEntry& e) {
    if (e.vnf_instance == kNoElement) ++invalidated;
  });
  EXPECT_EQ(invalidated, 50u);
  table.check_invariants();
}

// Retired arrays and entries drain once the table is quiescent.
TEST(ShardedFlowTable, QuiescentReclaimDrainsRetiredBacklog) {
  ShardedFlowTable table{16, 2};
  const Labels labels{5, 5};
  for (std::uint32_t i = 0; i < 2000; ++i) {   // forces several rehashes
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }
  for (std::uint32_t i = 0; i < 2000; i += 2) {
    (void)table.erase(labels, make_tuple(i));
  }
  (void)table.epoch_domain().try_reclaim();
  EXPECT_EQ(table.epoch_domain().retired_count(), 0u);
  EXPECT_EQ(table.epoch_domain().pinned_readers(), 0u);
  table.check_invariants();
}

// memory_bytes reflects growth: more live flows, more resident bytes.
TEST(ShardedFlowTable, MemoryBytesGrowsWithLiveFlows) {
  ShardedFlowTable table{64, 4};
  const Labels labels{6, 6};
  const std::size_t empty_bytes = table.memory_bytes();
  EXPECT_GT(empty_bytes, 0u);
  for (std::uint32_t i = 0; i < 10000; ++i) {
    table.insert(labels, make_tuple(i), FlowEntry{i, i, i});
  }
  EXPECT_GT(table.memory_bytes(), empty_bytes);
}

}  // namespace
}  // namespace switchboard::dataplane
