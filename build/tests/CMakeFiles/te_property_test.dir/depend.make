# Empty dependencies file for te_property_test.
# This may be replaced when dependencies are built.
