file(REMOVE_RECURSE
  "CMakeFiles/te_property_test.dir/te_property_test.cpp.o"
  "CMakeFiles/te_property_test.dir/te_property_test.cpp.o.d"
  "te_property_test"
  "te_property_test.pdb"
  "te_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/te_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
