file(REMOVE_RECURSE
  "CMakeFiles/dht_flow_table_test.dir/dht_flow_table_test.cpp.o"
  "CMakeFiles/dht_flow_table_test.dir/dht_flow_table_test.cpp.o.d"
  "dht_flow_table_test"
  "dht_flow_table_test.pdb"
  "dht_flow_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dht_flow_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
