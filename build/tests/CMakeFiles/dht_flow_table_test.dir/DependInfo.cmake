
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dht_flow_table_test.cpp" "tests/CMakeFiles/dht_flow_table_test.dir/dht_flow_table_test.cpp.o" "gcc" "tests/CMakeFiles/dht_flow_table_test.dir/dht_flow_table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/sb_control.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/sb_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/sb_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/te/CMakeFiles/sb_te.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/sb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
