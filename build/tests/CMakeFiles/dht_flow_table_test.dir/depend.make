# Empty dependencies file for dht_flow_table_test.
# This may be replaced when dependencies are built.
