# Empty compiler generated dependencies file for enterprise_chain.
# This may be replaced when dependencies are built.
