file(REMOVE_RECURSE
  "CMakeFiles/enterprise_chain.dir/enterprise_chain.cpp.o"
  "CMakeFiles/enterprise_chain.dir/enterprise_chain.cpp.o.d"
  "enterprise_chain"
  "enterprise_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
