# Empty dependencies file for bench_fig10_route_update.
# This may be replaced when dependencies are built.
