file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_route_update.dir/bench/bench_fig10_route_update.cpp.o"
  "CMakeFiles/bench_fig10_route_update.dir/bench/bench_fig10_route_update.cpp.o.d"
  "bench/bench_fig10_route_update"
  "bench/bench_fig10_route_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_route_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
