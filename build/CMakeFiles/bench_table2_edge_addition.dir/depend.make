# Empty dependencies file for bench_table2_edge_addition.
# This may be replaced when dependencies are built.
