file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_edge_addition.dir/bench/bench_table2_edge_addition.cpp.o"
  "CMakeFiles/bench_table2_edge_addition.dir/bench/bench_table2_edge_addition.cpp.o.d"
  "bench/bench_table2_edge_addition"
  "bench/bench_table2_edge_addition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_edge_addition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
