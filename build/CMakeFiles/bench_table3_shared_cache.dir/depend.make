# Empty dependencies file for bench_table3_shared_cache.
# This may be replaced when dependencies are built.
