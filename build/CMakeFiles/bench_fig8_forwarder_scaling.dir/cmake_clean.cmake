file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_forwarder_scaling.dir/bench/bench_fig8_forwarder_scaling.cpp.o"
  "CMakeFiles/bench_fig8_forwarder_scaling.dir/bench/bench_fig8_forwarder_scaling.cpp.o.d"
  "bench/bench_fig8_forwarder_scaling"
  "bench/bench_fig8_forwarder_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_forwarder_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
