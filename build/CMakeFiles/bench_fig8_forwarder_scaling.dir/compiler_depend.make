# Empty compiler generated dependencies file for bench_fig8_forwarder_scaling.
# This may be replaced when dependencies are built.
