# Empty compiler generated dependencies file for bench_fig12_te_comparison.
# This may be replaced when dependencies are built.
