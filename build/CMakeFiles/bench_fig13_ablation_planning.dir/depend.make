# Empty dependencies file for bench_fig13_ablation_planning.
# This may be replaced when dependencies are built.
