file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_ablation_planning.dir/bench/bench_fig13_ablation_planning.cpp.o"
  "CMakeFiles/bench_fig13_ablation_planning.dir/bench/bench_fig13_ablation_planning.cpp.o.d"
  "bench/bench_fig13_ablation_planning"
  "bench/bench_fig13_ablation_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_ablation_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
