file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dataplane.dir/bench/bench_ablation_dataplane.cpp.o"
  "CMakeFiles/bench_ablation_dataplane.dir/bench/bench_ablation_dataplane.cpp.o.d"
  "bench/bench_ablation_dataplane"
  "bench/bench_ablation_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
