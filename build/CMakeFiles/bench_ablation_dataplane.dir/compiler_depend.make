# Empty compiler generated dependencies file for bench_ablation_dataplane.
# This may be replaced when dependencies are built.
