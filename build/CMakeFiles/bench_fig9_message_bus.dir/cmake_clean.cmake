file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_message_bus.dir/bench/bench_fig9_message_bus.cpp.o"
  "CMakeFiles/bench_fig9_message_bus.dir/bench/bench_fig9_message_bus.cpp.o.d"
  "bench/bench_fig9_message_bus"
  "bench/bench_fig9_message_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_message_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
