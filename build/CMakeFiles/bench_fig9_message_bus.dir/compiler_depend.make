# Empty compiler generated dependencies file for bench_fig9_message_bus.
# This may be replaced when dependencies are built.
