file(REMOVE_RECURSE
  "CMakeFiles/sb_net.dir/routing.cpp.o"
  "CMakeFiles/sb_net.dir/routing.cpp.o.d"
  "CMakeFiles/sb_net.dir/topology.cpp.o"
  "CMakeFiles/sb_net.dir/topology.cpp.o.d"
  "CMakeFiles/sb_net.dir/topology_gen.cpp.o"
  "CMakeFiles/sb_net.dir/topology_gen.cpp.o.d"
  "CMakeFiles/sb_net.dir/traffic_matrix.cpp.o"
  "CMakeFiles/sb_net.dir/traffic_matrix.cpp.o.d"
  "libsb_net.a"
  "libsb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
