# Empty dependencies file for sb_net.
# This may be replaced when dependencies are built.
