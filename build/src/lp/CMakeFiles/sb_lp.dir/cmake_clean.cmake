file(REMOVE_RECURSE
  "CMakeFiles/sb_lp.dir/mip.cpp.o"
  "CMakeFiles/sb_lp.dir/mip.cpp.o.d"
  "CMakeFiles/sb_lp.dir/problem.cpp.o"
  "CMakeFiles/sb_lp.dir/problem.cpp.o.d"
  "CMakeFiles/sb_lp.dir/simplex.cpp.o"
  "CMakeFiles/sb_lp.dir/simplex.cpp.o.d"
  "libsb_lp.a"
  "libsb_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
