
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/message_bus.cpp" "src/bus/CMakeFiles/sb_bus.dir/message_bus.cpp.o" "gcc" "src/bus/CMakeFiles/sb_bus.dir/message_bus.cpp.o.d"
  "/root/repo/src/bus/topic.cpp" "src/bus/CMakeFiles/sb_bus.dir/topic.cpp.o" "gcc" "src/bus/CMakeFiles/sb_bus.dir/topic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
