file(REMOVE_RECURSE
  "CMakeFiles/sb_bus.dir/message_bus.cpp.o"
  "CMakeFiles/sb_bus.dir/message_bus.cpp.o.d"
  "CMakeFiles/sb_bus.dir/topic.cpp.o"
  "CMakeFiles/sb_bus.dir/topic.cpp.o.d"
  "libsb_bus.a"
  "libsb_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
