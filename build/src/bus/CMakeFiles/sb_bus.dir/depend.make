# Empty dependencies file for sb_bus.
# This may be replaced when dependencies are built.
