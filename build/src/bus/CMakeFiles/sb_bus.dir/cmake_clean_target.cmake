file(REMOVE_RECURSE
  "libsb_bus.a"
)
