# Empty dependencies file for sb_dataplane.
# This may be replaced when dependencies are built.
