file(REMOVE_RECURSE
  "CMakeFiles/sb_dataplane.dir/dht_flow_table.cpp.o"
  "CMakeFiles/sb_dataplane.dir/dht_flow_table.cpp.o.d"
  "CMakeFiles/sb_dataplane.dir/flow_table.cpp.o"
  "CMakeFiles/sb_dataplane.dir/flow_table.cpp.o.d"
  "CMakeFiles/sb_dataplane.dir/forwarder.cpp.o"
  "CMakeFiles/sb_dataplane.dir/forwarder.cpp.o.d"
  "CMakeFiles/sb_dataplane.dir/load_balancer.cpp.o"
  "CMakeFiles/sb_dataplane.dir/load_balancer.cpp.o.d"
  "CMakeFiles/sb_dataplane.dir/ovs_forwarder.cpp.o"
  "CMakeFiles/sb_dataplane.dir/ovs_forwarder.cpp.o.d"
  "CMakeFiles/sb_dataplane.dir/traffic_gen.cpp.o"
  "CMakeFiles/sb_dataplane.dir/traffic_gen.cpp.o.d"
  "libsb_dataplane.a"
  "libsb_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
