
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/dht_flow_table.cpp" "src/dataplane/CMakeFiles/sb_dataplane.dir/dht_flow_table.cpp.o" "gcc" "src/dataplane/CMakeFiles/sb_dataplane.dir/dht_flow_table.cpp.o.d"
  "/root/repo/src/dataplane/flow_table.cpp" "src/dataplane/CMakeFiles/sb_dataplane.dir/flow_table.cpp.o" "gcc" "src/dataplane/CMakeFiles/sb_dataplane.dir/flow_table.cpp.o.d"
  "/root/repo/src/dataplane/forwarder.cpp" "src/dataplane/CMakeFiles/sb_dataplane.dir/forwarder.cpp.o" "gcc" "src/dataplane/CMakeFiles/sb_dataplane.dir/forwarder.cpp.o.d"
  "/root/repo/src/dataplane/load_balancer.cpp" "src/dataplane/CMakeFiles/sb_dataplane.dir/load_balancer.cpp.o" "gcc" "src/dataplane/CMakeFiles/sb_dataplane.dir/load_balancer.cpp.o.d"
  "/root/repo/src/dataplane/ovs_forwarder.cpp" "src/dataplane/CMakeFiles/sb_dataplane.dir/ovs_forwarder.cpp.o" "gcc" "src/dataplane/CMakeFiles/sb_dataplane.dir/ovs_forwarder.cpp.o.d"
  "/root/repo/src/dataplane/traffic_gen.cpp" "src/dataplane/CMakeFiles/sb_dataplane.dir/traffic_gen.cpp.o" "gcc" "src/dataplane/CMakeFiles/sb_dataplane.dir/traffic_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
