file(REMOVE_RECURSE
  "libsb_dataplane.a"
)
