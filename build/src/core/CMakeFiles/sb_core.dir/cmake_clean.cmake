file(REMOVE_RECURSE
  "CMakeFiles/sb_core.dir/deployment.cpp.o"
  "CMakeFiles/sb_core.dir/deployment.cpp.o.d"
  "CMakeFiles/sb_core.dir/middleware.cpp.o"
  "CMakeFiles/sb_core.dir/middleware.cpp.o.d"
  "libsb_core.a"
  "libsb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
