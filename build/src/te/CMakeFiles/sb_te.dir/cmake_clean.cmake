file(REMOVE_RECURSE
  "CMakeFiles/sb_te.dir/baselines.cpp.o"
  "CMakeFiles/sb_te.dir/baselines.cpp.o.d"
  "CMakeFiles/sb_te.dir/capacity_planning.cpp.o"
  "CMakeFiles/sb_te.dir/capacity_planning.cpp.o.d"
  "CMakeFiles/sb_te.dir/dp_routing.cpp.o"
  "CMakeFiles/sb_te.dir/dp_routing.cpp.o.d"
  "CMakeFiles/sb_te.dir/evaluator.cpp.o"
  "CMakeFiles/sb_te.dir/evaluator.cpp.o.d"
  "CMakeFiles/sb_te.dir/loads.cpp.o"
  "CMakeFiles/sb_te.dir/loads.cpp.o.d"
  "CMakeFiles/sb_te.dir/lp_routing.cpp.o"
  "CMakeFiles/sb_te.dir/lp_routing.cpp.o.d"
  "CMakeFiles/sb_te.dir/routing_solution.cpp.o"
  "CMakeFiles/sb_te.dir/routing_solution.cpp.o.d"
  "libsb_te.a"
  "libsb_te.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
