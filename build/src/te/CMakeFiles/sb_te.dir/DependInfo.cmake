
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/te/baselines.cpp" "src/te/CMakeFiles/sb_te.dir/baselines.cpp.o" "gcc" "src/te/CMakeFiles/sb_te.dir/baselines.cpp.o.d"
  "/root/repo/src/te/capacity_planning.cpp" "src/te/CMakeFiles/sb_te.dir/capacity_planning.cpp.o" "gcc" "src/te/CMakeFiles/sb_te.dir/capacity_planning.cpp.o.d"
  "/root/repo/src/te/dp_routing.cpp" "src/te/CMakeFiles/sb_te.dir/dp_routing.cpp.o" "gcc" "src/te/CMakeFiles/sb_te.dir/dp_routing.cpp.o.d"
  "/root/repo/src/te/evaluator.cpp" "src/te/CMakeFiles/sb_te.dir/evaluator.cpp.o" "gcc" "src/te/CMakeFiles/sb_te.dir/evaluator.cpp.o.d"
  "/root/repo/src/te/loads.cpp" "src/te/CMakeFiles/sb_te.dir/loads.cpp.o" "gcc" "src/te/CMakeFiles/sb_te.dir/loads.cpp.o.d"
  "/root/repo/src/te/lp_routing.cpp" "src/te/CMakeFiles/sb_te.dir/lp_routing.cpp.o" "gcc" "src/te/CMakeFiles/sb_te.dir/lp_routing.cpp.o.d"
  "/root/repo/src/te/routing_solution.cpp" "src/te/CMakeFiles/sb_te.dir/routing_solution.cpp.o" "gcc" "src/te/CMakeFiles/sb_te.dir/routing_solution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/sb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/sb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
