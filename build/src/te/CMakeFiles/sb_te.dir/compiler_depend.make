# Empty compiler generated dependencies file for sb_te.
# This may be replaced when dependencies are built.
