file(REMOVE_RECURSE
  "libsb_te.a"
)
