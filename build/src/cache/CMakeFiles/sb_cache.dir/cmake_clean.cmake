file(REMOVE_RECURSE
  "CMakeFiles/sb_cache.dir/experiment.cpp.o"
  "CMakeFiles/sb_cache.dir/experiment.cpp.o.d"
  "CMakeFiles/sb_cache.dir/lru_cache.cpp.o"
  "CMakeFiles/sb_cache.dir/lru_cache.cpp.o.d"
  "CMakeFiles/sb_cache.dir/web_workload.cpp.o"
  "CMakeFiles/sb_cache.dir/web_workload.cpp.o.d"
  "libsb_cache.a"
  "libsb_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
