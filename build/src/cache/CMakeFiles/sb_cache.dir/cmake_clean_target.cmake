file(REMOVE_RECURSE
  "libsb_cache.a"
)
