# Empty dependencies file for sb_cache.
# This may be replaced when dependencies are built.
