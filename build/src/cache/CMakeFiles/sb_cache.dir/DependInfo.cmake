
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/experiment.cpp" "src/cache/CMakeFiles/sb_cache.dir/experiment.cpp.o" "gcc" "src/cache/CMakeFiles/sb_cache.dir/experiment.cpp.o.d"
  "/root/repo/src/cache/lru_cache.cpp" "src/cache/CMakeFiles/sb_cache.dir/lru_cache.cpp.o" "gcc" "src/cache/CMakeFiles/sb_cache.dir/lru_cache.cpp.o.d"
  "/root/repo/src/cache/web_workload.cpp" "src/cache/CMakeFiles/sb_cache.dir/web_workload.cpp.o" "gcc" "src/cache/CMakeFiles/sb_cache.dir/web_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
