# Empty dependencies file for sb_control.
# This may be replaced when dependencies are built.
