file(REMOVE_RECURSE
  "CMakeFiles/sb_control.dir/edge_controller.cpp.o"
  "CMakeFiles/sb_control.dir/edge_controller.cpp.o.d"
  "CMakeFiles/sb_control.dir/elements.cpp.o"
  "CMakeFiles/sb_control.dir/elements.cpp.o.d"
  "CMakeFiles/sb_control.dir/global_switchboard.cpp.o"
  "CMakeFiles/sb_control.dir/global_switchboard.cpp.o.d"
  "CMakeFiles/sb_control.dir/local_switchboard.cpp.o"
  "CMakeFiles/sb_control.dir/local_switchboard.cpp.o.d"
  "CMakeFiles/sb_control.dir/messages.cpp.o"
  "CMakeFiles/sb_control.dir/messages.cpp.o.d"
  "CMakeFiles/sb_control.dir/vnf_controller.cpp.o"
  "CMakeFiles/sb_control.dir/vnf_controller.cpp.o.d"
  "libsb_control.a"
  "libsb_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
