
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/edge_controller.cpp" "src/control/CMakeFiles/sb_control.dir/edge_controller.cpp.o" "gcc" "src/control/CMakeFiles/sb_control.dir/edge_controller.cpp.o.d"
  "/root/repo/src/control/elements.cpp" "src/control/CMakeFiles/sb_control.dir/elements.cpp.o" "gcc" "src/control/CMakeFiles/sb_control.dir/elements.cpp.o.d"
  "/root/repo/src/control/global_switchboard.cpp" "src/control/CMakeFiles/sb_control.dir/global_switchboard.cpp.o" "gcc" "src/control/CMakeFiles/sb_control.dir/global_switchboard.cpp.o.d"
  "/root/repo/src/control/local_switchboard.cpp" "src/control/CMakeFiles/sb_control.dir/local_switchboard.cpp.o" "gcc" "src/control/CMakeFiles/sb_control.dir/local_switchboard.cpp.o.d"
  "/root/repo/src/control/messages.cpp" "src/control/CMakeFiles/sb_control.dir/messages.cpp.o" "gcc" "src/control/CMakeFiles/sb_control.dir/messages.cpp.o.d"
  "/root/repo/src/control/vnf_controller.cpp" "src/control/CMakeFiles/sb_control.dir/vnf_controller.cpp.o" "gcc" "src/control/CMakeFiles/sb_control.dir/vnf_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bus/CMakeFiles/sb_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/sb_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/te/CMakeFiles/sb_te.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/sb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
