file(REMOVE_RECURSE
  "libsb_control.a"
)
