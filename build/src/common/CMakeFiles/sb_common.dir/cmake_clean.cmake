file(REMOVE_RECURSE
  "CMakeFiles/sb_common.dir/cost.cpp.o"
  "CMakeFiles/sb_common.dir/cost.cpp.o.d"
  "CMakeFiles/sb_common.dir/log.cpp.o"
  "CMakeFiles/sb_common.dir/log.cpp.o.d"
  "CMakeFiles/sb_common.dir/rng.cpp.o"
  "CMakeFiles/sb_common.dir/rng.cpp.o.d"
  "CMakeFiles/sb_common.dir/stats.cpp.o"
  "CMakeFiles/sb_common.dir/stats.cpp.o.d"
  "CMakeFiles/sb_common.dir/zipf.cpp.o"
  "CMakeFiles/sb_common.dir/zipf.cpp.o.d"
  "libsb_common.a"
  "libsb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
