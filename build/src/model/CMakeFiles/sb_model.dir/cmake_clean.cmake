file(REMOVE_RECURSE
  "CMakeFiles/sb_model.dir/network_model.cpp.o"
  "CMakeFiles/sb_model.dir/network_model.cpp.o.d"
  "CMakeFiles/sb_model.dir/scenario.cpp.o"
  "CMakeFiles/sb_model.dir/scenario.cpp.o.d"
  "libsb_model.a"
  "libsb_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
