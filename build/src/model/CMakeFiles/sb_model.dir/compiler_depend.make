# Empty compiler generated dependencies file for sb_model.
# This may be replaced when dependencies are built.
