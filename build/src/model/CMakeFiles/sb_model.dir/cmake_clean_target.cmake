file(REMOVE_RECURSE
  "libsb_model.a"
)
